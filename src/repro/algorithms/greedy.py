"""The GREEDY offline baseline of Section V-A.

Iteratively selects the "currently best ad instance" -- the feasible
candidate with the highest budget efficiency
:math:`\\gamma_{ijk} = \\lambda_{ijk} / c_k` -- until nothing feasible
remains.

Selecting one instance never changes another candidate's efficiency
(only its feasibility), so a single sweep over all candidates sorted by
decreasing efficiency is exactly equivalent to the iterate-and-rescan
formulation in the paper, at :math:`O(N \\log N)` for N valid
candidates.  A true re-scan variant is retained (``rescan=True``) for
the efficiency ablation; it produces the identical assignment.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.algorithms.base import OfflineAlgorithm
from repro.core.assignment import AdInstance, Assignment
from repro.core.problem import MUAAProblem
from repro.obs.recorder import recorder

#: Candidates per vectorized sweep chunk.  Any value yields the same
#: assignment (the pre-filter is state-monotone); this only trades mask
#: allocation size against pre-filter staleness.
_SWEEP_CHUNK = 1 << 20


class GreedyEfficiency(OfflineAlgorithm):
    """Global budget-efficiency greedy.

    Args:
        rescan: Use the literal O(N^2) re-scan formulation instead of
            the sort-once sweep.  Results are identical; only the
            running time differs (this is what makes GREEDY the slowest
            curve in the paper's Figures 3b-8b).
        shards: Solve through a spatial shard plan with this many
            shards: candidate columns are extracted one shard engine at
            a time (each released before the next is built, so peak
            memory is the largest shard) and merged into one global
            efficiency sweep.  ``1`` (default) keeps the original
            unsharded path byte-for-byte.
        shard_plan: Explicit :class:`~repro.sharding.ShardPlan`,
            overriding ``shards``.
    """

    name = "GREEDY"

    def __init__(
        self,
        rescan: bool = False,
        shards: int = 1,
        shard_plan=None,
    ) -> None:
        self._rescan = rescan
        self._shards = shards
        self._shard_plan = shard_plan

    def solve(self, problem: MUAAProblem) -> Assignment:
        rec = recorder()
        assignment = problem.new_assignment()
        if not self._rescan:
            plan = self._resolve_plan(problem)
            if plan is not None:
                with rec.span("greedy.solve", path="sharded"):
                    self._solve_sharded(problem, plan, assignment)
                return assignment
            engine = problem.acquire_engine()
            if engine is not None:
                with rec.span("greedy.solve", path="vectorized"):
                    self._solve_vectorized(problem, engine, assignment)
                return assignment
        with rec.span(
            "greedy.solve", path="rescan" if self._rescan else "scalar"
        ):
            with rec.span("greedy.enumerate"):
                candidates: List[AdInstance] = [
                    inst
                    for inst in problem.candidate_instances()
                    if inst.utility > 0
                ]
            if self._rescan:
                with rec.span("greedy.sweep"):
                    self._solve_rescan(candidates, assignment)
            else:
                with rec.span("greedy.sweep"):
                    candidates.sort(key=lambda inst: -inst.efficiency)
                    for instance in candidates:
                        assignment.add(instance, strict=False)
        return assignment

    def _resolve_plan(self, problem: MUAAProblem):
        """The active shard plan, or ``None`` for the unsharded path."""
        if self._shard_plan is None and self._shards <= 1:
            return None
        from repro.sharding import resolve_plan

        return resolve_plan(problem, self._shards, self._shard_plan)

    @staticmethod
    def _solve_sharded(
        problem: MUAAProblem, plan, assignment: Assignment
    ) -> None:
        """Per-shard candidate extraction, one global ranked sweep.

        The heavy part (engine build + utility scoring) runs one shard
        at a time, each view released before the next is built; the
        merged sweep then applies the global capacity/budget/pair
        constraints, which is the entire cross-shard coupling GREEDY
        has.  Candidate values are bitwise those of the global engine,
        so the result matches the unsharded sweep up to exact
        cross-shard efficiency ties.
        """
        from repro.sharding import (
            concat_columns,
            greedy_sweep,
            shard_candidate_columns,
        )

        rec = recorder()
        chunks = []
        for shard in range(plan.n_shards):
            with rec.span("greedy.shard", shard=shard):
                chunks.append(
                    shard_candidate_columns(plan.problem_for(shard))
                )
            plan.release(shard)
        columns = concat_columns(chunks)
        with rec.span("greedy.sweep", n_candidates=int(columns[0].size)):
            greedy_sweep(problem, columns, assignment)

    @staticmethod
    def _solve_vectorized(
        problem: MUAAProblem, engine, assignment: Assignment
    ) -> None:
        """The sort-once sweep on the columnar engine.

        Candidate order, efficiency values, tie-breaking (stable sort
        over the enumeration order) and feasibility tolerances all match
        the scalar sweep exactly, so the resulting assignment is
        identical; only AdInstance objects for *committed* ads are ever
        constructed.
        """
        rec = recorder()
        with rec.span("greedy.rank"):
            utilities = engine.utilities()
            if utilities.size == 0:
                return
            flat_util = utilities.ravel()
            flat_eff = engine.efficiencies().ravel()
            keep = np.flatnonzero(flat_util > 0)
            if keep.size == 0:
                return
            order = keep[np.argsort(-flat_eff[keep], kind="stable")]

        with rec.span("greedy.sweep", n_candidates=int(keep.size)):
            arrays = engine.arrays
            edges = engine.edges
            ad_types = problem.ad_types
            n_types = len(ad_types)
            remaining_cap = arrays.capacity.astype(np.int64, copy=True)
            spent = np.zeros(arrays.n_vendors, dtype=float)
            budget = arrays.budget
            # The scalar check is ``spent[ve] + cost > budget[ve] + 1e-9``
            # with the epsilon added *in the budget column's dtype*
            # (weak-scalar promotion); widening that sum to float64
            # afterwards reproduces the comparison bit for bit, so the
            # chunk pre-filter below is the exact complement of the
            # scalar rejection -- never stricter, never looser.
            threshold = (
                budget + np.asarray(1e-9, dtype=budget.dtype)
            ).astype(np.float64)
            type_cost = np.array(
                [ad_type.cost for ad_type in ad_types], dtype=np.float64
            )
            min_cost = float(type_cost.min())
            used_pairs = set()
            customer_idx = edges.customer_idx
            vendor_idx = edges.vendor_idx
            # Chunked sweep: infeasibility is monotone (capacity only
            # falls, spend only rises), so a candidate infeasible at its
            # chunk boundary is infeasible forever and the vectorized
            # mask drops it without changing the result; survivors still
            # run through the authoritative scalar loop, which re-checks
            # everything (including the pair-exclusivity set).
            chunk_size = _SWEEP_CHUNK
            for start in range(0, order.size, chunk_size):
                if remaining_cap.max() <= 0:
                    break
                if bool(np.all(spent + min_cost > threshold)):
                    break
                chunk = order[start:start + chunk_size]
                edge_a = chunk // n_types
                k_a = chunk - edge_a * n_types
                cu_a = customer_idx[edge_a]
                ve_a = vendor_idx[edge_a]
                feasible = (remaining_cap[cu_a] > 0) & (
                    spent[ve_a] + type_cost[k_a] <= threshold[ve_a]
                )
                for position in np.flatnonzero(feasible).tolist():
                    flat = int(chunk[position])
                    edge, k = divmod(flat, n_types)
                    cu = int(customer_idx[edge])
                    ve = int(vendor_idx[edge])
                    if remaining_cap[cu] <= 0 or (cu, ve) in used_pairs:
                        continue
                    cost = ad_types[k].cost
                    # Same tolerance as Assignment.can_add's budget check.
                    if spent[ve] + cost > budget[ve] + 1e-9:
                        continue
                    used_pairs.add((cu, ve))
                    remaining_cap[cu] -= 1
                    spent[ve] += cost
                    assignment.add(
                        AdInstance(
                            customer_id=int(arrays.customer_ids[cu]),
                            vendor_id=int(arrays.vendor_ids[ve]),
                            type_id=ad_types[k].type_id,
                            utility=float(flat_util[flat]),
                            cost=cost,
                        ),
                        strict=True,
                    )

    @staticmethod
    def _solve_rescan(
        candidates: List[AdInstance], assignment: Assignment
    ) -> None:
        """Literal formulation: re-scan for the best feasible candidate."""
        alive = list(candidates)
        while True:
            best_index = -1
            best_efficiency = 0.0
            for index, instance in enumerate(alive):
                if instance.efficiency > best_efficiency and assignment.can_add(
                    instance
                ):
                    best_index = index
                    best_efficiency = instance.efficiency
            if best_index < 0:
                return
            assignment.add(alive.pop(best_index), strict=True)
