"""The GREEDY offline baseline of Section V-A.

Iteratively selects the "currently best ad instance" -- the feasible
candidate with the highest budget efficiency
:math:`\\gamma_{ijk} = \\lambda_{ijk} / c_k` -- until nothing feasible
remains.

Selecting one instance never changes another candidate's efficiency
(only its feasibility), so a single sweep over all candidates sorted by
decreasing efficiency is exactly equivalent to the iterate-and-rescan
formulation in the paper, at :math:`O(N \\log N)` for N valid
candidates.  A true re-scan variant is retained (``rescan=True``) for
the efficiency ablation; it produces the identical assignment.
"""

from __future__ import annotations

from typing import List

from repro.algorithms.base import OfflineAlgorithm
from repro.core.assignment import AdInstance, Assignment
from repro.core.problem import MUAAProblem


class GreedyEfficiency(OfflineAlgorithm):
    """Global budget-efficiency greedy.

    Args:
        rescan: Use the literal O(N^2) re-scan formulation instead of
            the sort-once sweep.  Results are identical; only the
            running time differs (this is what makes GREEDY the slowest
            curve in the paper's Figures 3b-8b).
    """

    name = "GREEDY"

    def __init__(self, rescan: bool = False) -> None:
        self._rescan = rescan

    def solve(self, problem: MUAAProblem) -> Assignment:
        candidates: List[AdInstance] = [
            inst for inst in problem.candidate_instances() if inst.utility > 0
        ]
        assignment = problem.new_assignment()
        if self._rescan:
            self._solve_rescan(candidates, assignment)
        else:
            candidates.sort(key=lambda inst: -inst.efficiency)
            for instance in candidates:
                assignment.add(instance, strict=False)
        return assignment

    @staticmethod
    def _solve_rescan(
        candidates: List[AdInstance], assignment: Assignment
    ) -> None:
        """Literal formulation: re-scan for the best feasible candidate."""
        alive = list(candidates)
        while True:
            best_index = -1
            best_efficiency = 0.0
            for index, instance in enumerate(alive):
                if instance.efficiency > best_efficiency and assignment.can_add(
                    instance
                ):
                    best_index = index
                    best_efficiency = instance.efficiency
            if best_index < 0:
                return
            assignment.add(alive.pop(best_index), strict=True)
