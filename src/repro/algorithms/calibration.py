"""Estimation of :math:`\\gamma_{min}` and :math:`g` (Section IV-C).

A deployed broker cannot know the efficiency lower bound
:math:`\\gamma_{min}` in advance; the paper estimates it from historical
records.  Here, a *historical sample* is any collection of observed
budget efficiencies -- e.g. from yesterday's instance, or from the first
portion of today's stream -- and :math:`\\gamma_{min}` is taken as a low
quantile of the positive efficiencies (a strict minimum would be
dominated by a single outlier pair standing far from a vendor).

Given bounds, :math:`g` is chosen so that the threshold at full budget
consumption reaches the top of the efficiency range,
:math:`\\phi(1) = \\gamma_{max}`, i.e.
:math:`g = \\gamma_{max} \\cdot e / \\gamma_{min}` (the paper's upper
bound on useful g), clamped above :math:`e`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.core.problem import MUAAProblem
from repro.obs.recorder import recorder

#: Minimum admissible g (strictly above e for Corollary IV.1).
MIN_G = math.e * 1.001

#: Default quantiles for the robust efficiency bounds.
DEFAULT_LOW_QUANTILE = 0.05
DEFAULT_HIGH_QUANTILE = 0.95


@dataclass(frozen=True)
class GammaBounds:
    """Estimated efficiency bounds and the derived growth constant.

    Attributes:
        gamma_min: Estimated lower bound on budget efficiencies.
        gamma_max: Estimated upper bound on budget efficiencies.
        g: Recommended growth constant for O-AFA's threshold.
    """

    gamma_min: float
    gamma_max: float
    g: float


def _sampled_customer_rows(
    n_customers: int, sample_customers: Optional[int], seed: Optional[int]
) -> Optional[np.ndarray]:
    """Row indices of the calibration sample, or ``None`` for everyone.

    One shared sampler so the scalar and engine paths (and global vs
    per-vendor calibration) observe the identical customer subset for
    the same seed.
    """
    if sample_customers is None or sample_customers >= n_customers:
        return None
    rng = np.random.default_rng(seed)
    return rng.choice(n_customers, size=sample_customers, replace=False)


def observed_efficiencies(
    problem: MUAAProblem, sample_customers: Optional[int] = None,
    seed: Optional[int] = None,
) -> List[float]:
    """Positive budget efficiencies of (a sample of) valid instances.

    With a vectorized utility model this reads the compute engine's
    whole-table efficiency matrix in one pass; otherwise it walks the
    scalar per-pair path.  The two return the same multiset of values
    (ordering may differ, which the quantile estimators ignore).

    Args:
        problem: The historical problem instance to observe.
        sample_customers: When given, restrict to this many randomly
            chosen customers (keeps calibration cheap on big instances).
        seed: RNG seed for the sampling.
    """
    picks = _sampled_customer_rows(
        len(problem.customers), sample_customers, seed
    )
    engine = problem.acquire_engine()
    if engine is not None:
        utilities = engine.utilities()
        if picks is None:
            edge_rows = slice(None)
        else:
            edge_rows = np.isin(engine.edges.customer_idx, picks)
        util = utilities[edge_rows].ravel()
        eff = engine.efficiencies()[edge_rows].ravel()
        return eff[util > 0].tolist()
    customers = problem.customers
    if picks is not None:
        customers = [customers[i] for i in picks]
    efficiencies: List[float] = []
    for customer in customers:
        for vendor_id in problem.valid_vendor_ids(customer):
            for inst in problem.pair_instances(customer.customer_id, vendor_id):
                if inst.utility > 0:
                    efficiencies.append(inst.efficiency)
    return efficiencies


def estimate_gamma_bounds(
    efficiencies: Iterable[float],
    low_quantile: float = DEFAULT_LOW_QUANTILE,
    high_quantile: float = DEFAULT_HIGH_QUANTILE,
) -> GammaBounds:
    """Robust :math:`(\\gamma_{min}, \\gamma_{max}, g)` from a sample.

    Args:
        efficiencies: Observed positive budget efficiencies.
        low_quantile: Quantile used for :math:`\\gamma_{min}`.
        high_quantile: Quantile used for :math:`\\gamma_{max}`.

    Returns:
        The estimated bounds with the recommended ``g``.

    Raises:
        ValueError: If the sample contains no positive efficiency.
    """
    values = np.array([e for e in efficiencies if e > 0], dtype=float)
    if values.size == 0:
        raise ValueError("cannot calibrate from an empty efficiency sample")
    gamma_min = float(np.quantile(values, low_quantile))
    gamma_max = float(np.quantile(values, high_quantile))
    gamma_max = max(gamma_max, gamma_min)
    return GammaBounds(
        gamma_min=gamma_min,
        gamma_max=gamma_max,
        g=choose_g(gamma_min, gamma_max),
    )


def choose_g(gamma_min: float, gamma_max: float) -> float:
    """The paper's recommended growth constant.

    Picks :math:`g = \\gamma_{max} \\cdot e / \\gamma_{min}` so that
    :math:`\\phi(1) = \\gamma_{max}` (high-efficiency instances remain
    acceptable until the budget is fully used), clamped to stay strictly
    above :math:`e`.

    Raises:
        ValueError: On non-positive bounds.
    """
    if gamma_min <= 0 or gamma_max <= 0:
        raise ValueError("efficiency bounds must be positive")
    return max(MIN_G, gamma_max * math.e / gamma_min)


def calibrate_from_problem(
    problem: MUAAProblem,
    sample_customers: Optional[int] = 500,
    seed: Optional[int] = None,
    low_quantile: float = DEFAULT_LOW_QUANTILE,
    high_quantile: float = DEFAULT_HIGH_QUANTILE,
) -> GammaBounds:
    """One-call calibration: observe a historical instance and estimate.

    Raises:
        ValueError: If the instance has no positive-utility candidate.
    """
    with recorder().span("calibrate", sample_customers=sample_customers):
        return estimate_gamma_bounds(
            observed_efficiencies(problem, sample_customers, seed),
            low_quantile=low_quantile,
            high_quantile=high_quantile,
        )


def calibrate_per_vendor(
    problem: MUAAProblem,
    sample_customers: Optional[int] = 500,
    seed: Optional[int] = None,
    low_quantile: float = DEFAULT_LOW_QUANTILE,
    high_quantile: float = DEFAULT_HIGH_QUANTILE,
    min_sample: int = 8,
) -> Dict[int, GammaBounds]:
    """Per-vendor gamma bounds (Section IV-C refined per knapsack).

    Theorem IV.1's analysis is per vendor, so each vendor may use its
    own :math:`(\\gamma_{min}, g)` estimated from the efficiencies of
    *its* candidate instances.  Vendors whose sample is smaller than
    ``min_sample`` are omitted (callers fall back to the global
    bounds) -- a three-observation quantile is noise, not calibration.

    Returns:
        vendor_id -> bounds, for vendors with enough observations.
    """
    picks = _sampled_customer_rows(
        len(problem.customers), sample_customers, seed
    )
    per_vendor: Dict[int, List[float]] = {}
    engine = problem.acquire_engine()
    if engine is not None:
        utilities = engine.utilities()
        efficiencies = engine.efficiencies()
        edges = engine.edges
        arrays = engine.arrays
        in_sample = (
            None if picks is None else np.isin(edges.customer_idx, picks)
        )
        for row in range(arrays.n_vendors):
            span = edges.vendor_slice(row)
            util = utilities[span]
            eff = efficiencies[span]
            if in_sample is not None:
                util = util[in_sample[span]]
                eff = eff[in_sample[span]]
            sample = eff.ravel()[util.ravel() > 0]
            if sample.size:
                per_vendor[int(arrays.vendor_ids[row])] = sample.tolist()
    else:
        customers = problem.customers
        if picks is not None:
            customers = [customers[i] for i in picks]
        for customer in customers:
            for vendor_id in problem.valid_vendor_ids(customer):
                for inst in problem.pair_instances(
                    customer.customer_id, vendor_id
                ):
                    if inst.utility > 0:
                        per_vendor.setdefault(vendor_id, []).append(
                            inst.efficiency
                        )
    return {
        vendor_id: estimate_gamma_bounds(
            sample, low_quantile=low_quantile, high_quantile=high_quantile
        )
        for vendor_id, sample in per_vendor.items()
        if len(sample) >= min_sample
    }
