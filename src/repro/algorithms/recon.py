"""The reconciliation approach, RECON (Section III, Algorithm 1).

Per vendor, the single-vendor problem (Eq. 8) -- an optional-class
multiple-choice knapsack over the vendor's valid customers -- is solved
with a pluggable MCKP backend (greedy LP-relaxation by default, matching
the paper's use of an LP solver with :math:`(1-\\varepsilon)`
guarantees).  The per-vendor solutions are unioned, which may leave some
customers over their ad limit; the reconciliation loop then visits the
violated customers in random order, repeatedly deletes their
lowest-utility instance, and lets the freed vendor greedily re-spend the
refund on other valid customers with spare capacity.  Theorem III.1
bounds the result at :math:`(1 - \\varepsilon)\\,\\theta` of optimal.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.algorithms.base import OfflineAlgorithm
from repro.core.assignment import AdInstance, Assignment
from repro.core.entities import Vendor
from repro.core.problem import MUAAProblem
from repro.mckp.items import MCKPInstance, MCKPItem
from repro.mckp.solvers import solve as solve_mckp
from repro.obs.recorder import recorder
from repro.parallel import ParallelConfig, parallel_map, resolve
from repro.parallel import recon_workers
from repro.parallel.shm import HAVE_SHARED_MEMORY, ship_columns

_EPS = 1e-9


class Reconciliation(OfflineAlgorithm):
    """Algorithm 1: per-vendor MCKP + capacity-violation reconciliation.

    Args:
        mckp_method: Backend for the single-vendor problems; one of
            :data:`repro.mckp.solvers.SOLVER_NAMES`.
        seed: RNG seed for the random order in which violated customers
            are reconciled (line 7 of Algorithm 1 picks randomly).
            The RNG state is derived from this seed alone -- never from
            worker scheduling -- so a fixed seed produces identical
            assignments at every ``jobs`` value.
        violation_order: Order in which violated customers are
            reconciled -- ``"random"`` (the paper's choice),
            ``"most-violated"`` (largest capacity excess first), or
            ``"least-excess"`` (smallest excess first).  Exposed for
            the reconciliation-order ablation; the guarantee of
            Theorem III.1 holds for any order.
        jobs: Worker processes for the per-vendor MCKP solves (the
            independent subproblems of Eq. 8).  ``1`` (default) keeps
            the serial path; vendor batches are chunked across workers
            and merged in vendor order, so assignments are
            byte-identical to serial at any value.
        parallel: Full fan-out configuration; overrides ``jobs``.
        shards: Solve through a spatial shard plan with this many
            shards: each shard's per-vendor MCKPs run against that
            shard's engine only (one ``ship_columns`` block per shard
            when ``jobs > 1``), the shard is released, and the usual
            reconciliation then restores the global capacity
            constraint on replicated customers.  ``1`` (default) keeps
            the original unsharded path byte-for-byte.
        shard_plan: Explicit :class:`~repro.sharding.ShardPlan`,
            overriding ``shards``.

    Raises:
        ValueError: On an unknown violation order.
    """

    name = "RECON"

    #: Accepted reconciliation orders.
    VIOLATION_ORDERS = ("random", "most-violated", "least-excess")

    def __init__(
        self,
        mckp_method: str = "greedy-lp",
        seed: Optional[int] = None,
        violation_order: str = "random",
        jobs: int = 1,
        parallel: Optional[ParallelConfig] = None,
        shards: int = 1,
        shard_plan=None,
    ) -> None:
        if violation_order not in self.VIOLATION_ORDERS:
            raise ValueError(
                f"unknown violation order {violation_order!r}; choose "
                f"from {self.VIOLATION_ORDERS}"
            )
        self._mckp_method = mckp_method
        self._seed = seed
        self._violation_order = violation_order
        self._parallel = resolve(parallel, jobs)
        self._shards = shards
        self._shard_plan = shard_plan
        #: Diagnostics of the last run (violations found, ads replaced).
        self.last_stats: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Single-vendor problems (lines 2-5)
    # ------------------------------------------------------------------
    def _solve_single_vendor(
        self, problem: MUAAProblem, vendor: Vendor
    ) -> List[AdInstance]:
        """Solve :math:`\\mathbb{M}_j` and return its chosen instances."""
        with recorder().span("recon.vendor", vendor_id=vendor.vendor_id):
            return self._solve_single_vendor_inner(problem, vendor)

    def _solve_single_vendor_inner(
        self, problem: MUAAProblem, vendor: Vendor
    ) -> List[AdInstance]:
        items: List[MCKPItem] = []
        engine = problem.acquire_engine()
        if engine is not None:
            # The vendor's candidates are one contiguous slice of the
            # engine's edge table, utilities pre-scored.
            arrays = engine.arrays
            span = engine.vendor_edge_slice(vendor.vendor_id)
            utilities = engine.utilities()[span]
            customer_rows = engine.edges.customer_idx[span]
            for local, cu in enumerate(customer_rows.tolist()):
                customer_id = int(arrays.customer_ids[cu])
                for k, ad_type in enumerate(problem.ad_types):
                    utility = float(utilities[local, k])
                    if utility > 0 and ad_type.cost <= vendor.budget + _EPS:
                        items.append(
                            MCKPItem(
                                class_id=customer_id,
                                item_id=ad_type.type_id,
                                cost=ad_type.cost,
                                profit=utility,
                            )
                        )
        else:
            for customer_id in problem.valid_customer_ids(vendor):
                for inst in problem.pair_instances(
                    customer_id, vendor.vendor_id
                ):
                    if inst.utility > 0 and inst.cost <= vendor.budget + _EPS:
                        items.append(
                            MCKPItem(
                                class_id=customer_id,
                                item_id=inst.type_id,
                                cost=inst.cost,
                                profit=inst.utility,
                            )
                        )
        if not items:
            return []
        mckp = MCKPInstance.from_items(items, budget=vendor.budget)
        solution = solve_mckp(mckp, method=self._mckp_method)
        return [
            problem.make_instance(customer_id, vendor.vendor_id, item.item_id)
            for customer_id, item in solution.chosen.items()
        ]

    def _vendor_solutions(
        self, problem: MUAAProblem
    ) -> Iterator[List[AdInstance]]:
        """Per-vendor MCKP solutions, in vendor catalogue order.

        With ``jobs > 1`` and a built compute engine, vendor batches are
        solved in worker processes against shared-memory columns and
        merged back in vendor order; results are byte-identical to the
        serial loop.  Degrades to serial when the pool declines (one
        job, no shared memory, worker crash) or there is no engine.
        """
        chunks = self._parallel_vendor_solutions(problem)
        if chunks is not None:
            return iter(chunks)
        return (
            self._solve_single_vendor(problem, vendor)
            for vendor in problem.vendors
        )

    def _parallel_vendor_solutions(
        self, problem: MUAAProblem
    ) -> Optional[List[List[AdInstance]]]:
        """Fan the per-vendor solves across workers, or ``None``."""
        n_vendors = len(problem.vendors)
        if not HAVE_SHARED_MEMORY or not self._parallel.active(n_vendors):
            return None
        engine = problem.acquire_engine()
        if engine is None:
            # The scalar utility path cannot be shipped as columns;
            # stay on the serial reference loop.
            return None
        arrays = engine.arrays
        edges = engine.edges
        columns = {
            "utilities": engine.utilities(),
            "edge_customer": np.asarray(edges.customer_idx, dtype=np.int64),
            "vendor_starts": np.asarray(edges.vendor_starts, dtype=np.int64),
            "customer_ids": arrays.customer_ids,
            "budget": arrays.budget,
            "type_cost": arrays.type_cost,
            "type_ids": arrays.type_ids,
        }
        with ship_columns(columns) as shipment:
            chunked = parallel_map(
                recon_workers.solve_vendor_span,
                self._parallel.spans(n_vendors),
                self._parallel,
                initializer=recon_workers.init_worker,
                initargs=(shipment.handle, self._mckp_method),
            )
        if chunked is None:
            return None
        vendor_ids = arrays.vendor_ids
        solutions: List[List[AdInstance]] = [None] * n_vendors  # type: ignore[list-item]
        for chunk in chunked:
            for vendor_row, choices in chunk:
                vendor_id = int(vendor_ids[vendor_row])
                solutions[vendor_row] = [
                    problem.make_instance(customer_id, vendor_id, type_id)
                    for customer_id, type_id in choices
                ]
        return solutions

    # ------------------------------------------------------------------
    # Reconciliation (lines 6-11)
    # ------------------------------------------------------------------
    def _resolve_plan(self, problem: MUAAProblem):
        """The active shard plan, or ``None`` for the unsharded path."""
        if self._shard_plan is None and self._shards <= 1:
            return None
        from repro.sharding import resolve_plan

        return resolve_plan(problem, self._shards, self._shard_plan)

    @staticmethod
    def _merge(
        instances: List[AdInstance],
        by_customer: Dict[int, List[AdInstance]],
        spend: Dict[int, float],
        assigned_pairs: Set[Tuple[int, int]],
    ) -> None:
        """Union one vendor's solution into the mutable global view."""
        for inst in instances:
            by_customer.setdefault(inst.customer_id, []).append(inst)
            spend[inst.vendor_id] += inst.cost
            assigned_pairs.add(inst.pair)

    def solve(self, problem: MUAAProblem) -> Assignment:
        rec = recorder()

        # Mutable global view: per-customer instance lists, per-vendor
        # spend.  Capacity may be violated here by design.
        by_customer: Dict[int, List[AdInstance]] = {}
        spend: Dict[int, float] = {v.vendor_id: 0.0 for v in problem.vendors}
        assigned_pairs: Set[Tuple[int, int]] = set()

        plan = self._resolve_plan(problem)
        if plan is not None:
            # Sharded collection: each shard's engine lives only while
            # its vendors are solved (release before the next build),
            # so peak memory is the largest shard's edge table.  Every
            # vendor's candidate set is fully inside its shard (cell
            # size >= max radius + customer replication), making the
            # per-vendor solutions identical to the unsharded ones.
            for shard in range(plan.n_shards):
                view = plan.problem_for(shard)
                with rec.span(
                    "recon.shard_mckp",
                    shard=shard,
                    n_vendors=len(view.vendors),
                ):
                    for instances in self._vendor_solutions(view):
                        self._merge(
                            instances, by_customer, spend, assigned_pairs
                        )
                plan.release(shard)
        else:
            with rec.span(
                "recon.vendor_mckp", n_vendors=len(problem.vendors)
            ):
                for instances in self._vendor_solutions(problem):
                    self._merge(
                        instances, by_customer, spend, assigned_pairs
                    )

        assignment, stats = reconcile_capacity(
            problem,
            by_customer,
            spend,
            assigned_pairs,
            seed=self._seed,
            violation_order=self._violation_order,
        )
        self.last_stats = stats
        return assignment


def reconcile_capacity(
    problem: MUAAProblem,
    by_customer: Dict[int, List[AdInstance]],
    spend: Dict[int, float],
    assigned_pairs: Set[Tuple[int, int]],
    seed: Optional[int] = None,
    violation_order: str = "random",
) -> Tuple[Assignment, Dict[str, float]]:
    """Lines 6-11 of Algorithm 1 as a reusable pass.

    Takes the unioned per-vendor solutions (which may violate customer
    capacities -- by per-vendor construction in the unsharded solver,
    or additionally via replicated customers in the sharded solvers)
    and restores feasibility: violated customers are visited in the
    configured order, their lowest-utility instances dropped, and each
    refunded vendor greedily re-spends its freed budget.

    The mutable inputs (``by_customer``, ``spend``, ``assigned_pairs``)
    are consumed and modified in place.

    Returns:
        The feasible assignment and the run's violation statistics.
    """
    rec = recorder()
    rng = np.random.default_rng(seed)

    # Canonical (sorted) base order: the reconciliation order must
    # be a function of the seed and the instance alone, never of
    # dict insertion order or worker scheduling -- ``seed=`` then
    # gives identical output at any ``jobs`` value.
    violated = sorted(
        cid
        for cid, instances in by_customer.items()
        if len(instances) > problem.capacities[cid]
    )
    if violation_order == "random":
        rng.shuffle(violated)
    else:
        reverse = violation_order == "most-violated"
        violated.sort(
            key=lambda cid: len(by_customer[cid]) - problem.capacities[cid],
            reverse=reverse,
        )
    n_violations = len(violated)
    n_replacements = 0

    # Per-vendor candidate queues for the greedy re-assignment,
    # built lazily the first time a vendor frees budget.
    vendor_candidates: Dict[int, List[AdInstance]] = {}
    vendor_cursor: Dict[int, int] = {}

    def candidates_for(vendor_id: int) -> List[AdInstance]:
        queue = vendor_candidates.get(vendor_id)
        if queue is None:
            vendor = problem.vendors_by_id[vendor_id]
            queue = [
                inst
                for cid in problem.valid_customer_ids(vendor)
                for inst in problem.pair_instances(cid, vendor_id)
                if inst.utility > 0
            ]
            queue.sort(key=lambda inst: -inst.efficiency)
            vendor_candidates[vendor_id] = queue
            vendor_cursor[vendor_id] = 0
        return queue

    def redistribute(vendor_id: int) -> None:
        """Line 11: greedily re-spend the vendor's freed budget."""
        nonlocal n_replacements
        budget = problem.budgets[vendor_id]
        queue = candidates_for(vendor_id)
        cursor = vendor_cursor[vendor_id]
        while cursor < len(queue):
            inst = queue[cursor]
            cid = inst.customer_id
            if (
                inst.pair not in assigned_pairs
                and spend[vendor_id] + inst.cost <= budget + _EPS
                and len(by_customer.get(cid, ()))
                < problem.capacities[cid]
            ):
                by_customer.setdefault(cid, []).append(inst)
                spend[vendor_id] += inst.cost
                assigned_pairs.add(inst.pair)
                n_replacements += 1
                cursor += 1
                continue
            if spend[vendor_id] + problem.min_cost > budget + _EPS:
                break  # no ad type is affordable any more
            cursor += 1
        vendor_cursor[vendor_id] = cursor

    with rec.span("recon.reconcile", n_violated=n_violations):
        for cid in violated:
            instances = by_customer[cid]
            capacity = problem.capacities[cid]
            # Line 8: sort the customer's instances by utility.
            instances.sort(key=lambda inst: -inst.utility)
            while len(instances) > capacity:
                # Line 10: drop the lowest-utility instance.
                dropped = instances.pop()
                spend[dropped.vendor_id] -= dropped.cost
                assigned_pairs.discard(dropped.pair)
                # Line 11: the vendor re-spends its refund elsewhere.
                redistribute(dropped.vendor_id)

    rec.count("recon.violated_customers", n_violations)
    rec.count("recon.replacement_ads", n_replacements)
    stats = {
        "violated_customers": float(n_violations),
        "replacement_ads": float(n_replacements),
    }

    assignment = problem.new_assignment()
    for instances in by_customer.values():
        for inst in instances:
            assignment.add(inst, strict=True)
    return assignment, stats
