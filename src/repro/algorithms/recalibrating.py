"""O-AFA with online re-calibration of its threshold parameters.

Section IV-C: the broker "can gradually achieve a proper value of g for
the real systems after a period of tuning" -- gamma bounds drift as the
customer mix changes, so a deployed O-AFA should keep estimating them
from the efficiencies it observes in the stream itself.

:class:`RecalibratingOnlineAFA` wraps the O-AFA acceptance rule with a
sliding window of observed candidate efficiencies; every
``recalibrate_every`` customers it re-estimates
:math:`(\\gamma_{min}, \\gamma_{max}, g)` by quantiles over the window
and rebuilds the threshold.  Until the first window fills, a permissive
bootstrap threshold (accept anything affordable) gathers data.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from repro.algorithms.calibration import estimate_gamma_bounds
from repro.algorithms.online_afa import (
    AdaptiveExponentialThreshold,
    OnlineAdaptiveFactorAware,
    StaticThreshold,
)
from repro.core.assignment import AdInstance, Assignment
from repro.core.entities import Customer
from repro.core.problem import MUAAProblem


class RecalibratingOnlineAFA(OnlineAdaptiveFactorAware):
    """O-AFA whose gamma/g are re-estimated from the live stream.

    Args:
        window: Number of most recent candidate efficiencies kept.
        recalibrate_every: Customers between re-estimations.
        bootstrap_customers: Customers served with the permissive
            bootstrap threshold before the first calibration.
        low_quantile: Quantile for :math:`\\gamma_{min}`.
        high_quantile: Quantile for :math:`\\gamma_{max}`.
    """

    name = "ONLINE-RECAL"

    def __init__(
        self,
        window: int = 2_000,
        recalibrate_every: int = 100,
        bootstrap_customers: int = 50,
        low_quantile: float = 0.05,
        high_quantile: float = 0.95,
    ) -> None:
        if window < 1 or recalibrate_every < 1:
            raise ValueError("window and recalibrate_every must be >= 1")
        super().__init__(threshold=StaticThreshold(0.0))
        self._window = window
        self._every = recalibrate_every
        self._bootstrap = bootstrap_customers
        self._low_quantile = low_quantile
        self._high_quantile = high_quantile
        self._observations: Deque[float] = deque(maxlen=window)
        self._customers_seen = 0
        #: Number of completed re-calibrations (diagnostics).
        self.recalibrations = 0

    def reset(self, problem: MUAAProblem) -> None:
        self._observations.clear()
        self._customers_seen = 0
        self.recalibrations = 0
        self.threshold_function = StaticThreshold(0.0)

    def _maybe_recalibrate(self) -> None:
        due = (
            self._customers_seen >= self._bootstrap
            and self._customers_seen % self._every == 0
            and self._observations
        )
        if not due:
            return
        try:
            bounds = estimate_gamma_bounds(
                self._observations,
                low_quantile=self._low_quantile,
                high_quantile=self._high_quantile,
            )
        except ValueError:
            return  # nothing positive observed yet
        self.threshold_function = AdaptiveExponentialThreshold(
            gamma_min=bounds.gamma_min, g=bounds.g
        )
        self.recalibrations += 1

    def process_customer(
        self,
        problem: MUAAProblem,
        customer: Customer,
        assignment: Assignment,
    ) -> List[AdInstance]:
        # Observe the candidate efficiencies this customer *could* have
        # generated (not just accepted ones -- acceptance-only sampling
        # would bias gamma_min upward).
        for vendor_id in problem.valid_vendor_ids(customer):
            best = problem.best_instance_for_pair(
                customer.customer_id, vendor_id, by="efficiency"
            )
            if best is not None and best.utility > 0:
                self._observations.append(best.efficiency)
        self._customers_seen += 1
        self._maybe_recalibrate()
        return super().process_customer(problem, customer, assignment)
