"""Budget-pacing online baseline (industry-standard competitor).

Production ad systems commonly *pace* budgets: a vendor's spend at any
point of the day should not exceed the elapsed fraction of the day
times its budget, so the budget lasts until closing time.  Pacing is
utility-oblivious about thresholds (any affordable ad within the pace
is accepted) which makes it the natural industrial counterpoint to
O-AFA's efficiency-based threshold: same goal (don't burn the budget
early), different mechanism.
"""

from __future__ import annotations

from typing import List

from repro.algorithms.base import OnlineAlgorithm
from repro.core.assignment import AdInstance, Assignment
from repro.core.entities import Customer
from repro.core.problem import MUAAProblem

_EPS = 1e-9


class BudgetPacingOnline(OnlineAlgorithm):
    """Accept the best ad per vendor while spend stays on pace.

    The pace at hour :math:`h` allows a vendor to have spent at most
    ``budget * ((h - day_start) / day_length)`` (plus one ad of slack so
    the very first arrival can be served).

    Args:
        day_start: Hour the pacing clock starts.
        day_length: Hours over which each budget should last.
    """

    name = "PACING"

    def __init__(self, day_start: float = 0.0, day_length: float = 24.0) -> None:
        if day_length <= 0:
            raise ValueError(f"day_length must be positive, got {day_length}")
        self._day_start = day_start
        self._day_length = day_length

    def _allowed_spend(self, budget: float, hour: float) -> float:
        elapsed = (hour - self._day_start) % 24.0
        fraction = min(1.0, max(0.0, elapsed / self._day_length))
        return budget * fraction

    def process_customer(
        self,
        problem: MUAAProblem,
        customer: Customer,
        assignment: Assignment,
    ) -> List[AdInstance]:
        picked: List[AdInstance] = []
        for vendor_id in problem.valid_vendor_ids(customer):
            budget = problem.budgets[vendor_id]
            spent = assignment.spend_for_vendor(vendor_id)
            remaining = budget - spent
            if remaining < problem.min_cost - _EPS:
                continue
            allowed = self._allowed_spend(budget, customer.arrival_time)
            # One-ad slack: a perfectly paced vendor could otherwise
            # never serve the day's first arrivals.
            pace_room = allowed + problem.min_cost - spent
            if pace_room < problem.min_cost - _EPS:
                continue
            best = problem.best_instance_for_pair(
                customer.customer_id,
                vendor_id,
                by="efficiency",
                max_cost=min(remaining, pace_room),
            )
            if best is not None and best.utility > 0:
                picked.append(best)
        if len(picked) > customer.capacity:
            picked.sort(key=lambda inst: -inst.efficiency)
            picked = picked[: customer.capacity]
        return picked
