"""MUAA algorithms: the paper's approaches plus every baseline."""

from repro.algorithms.base import OfflineAlgorithm, OnlineAlgorithm, SolveResult
from repro.algorithms.batched import BatchedReconciliation, run_batched
from repro.algorithms.bounds import (
    capacity_bound,
    combined_bound,
    full_lp_bound,
    vendor_lp_bound,
)
from repro.algorithms.calibration import (
    GammaBounds,
    calibrate_from_problem,
    choose_g,
    estimate_gamma_bounds,
    observed_efficiencies,
)
from repro.algorithms.fallback import FallbackChain, FallbackTier
from repro.algorithms.greedy import GreedyEfficiency
from repro.algorithms.lp_rounding import LPRounding
from repro.algorithms.nearest import NearestVendor
from repro.algorithms.online_afa import (
    AdaptiveExponentialThreshold,
    OnlineAdaptiveFactorAware,
    StaticThreshold,
    ThresholdFunction,
)
from repro.algorithms.online_static import OnlineStaticThreshold
from repro.algorithms.optimal import ExactOptimal
from repro.algorithms.pacing import BudgetPacingOnline
from repro.algorithms.recalibrating import RecalibratingOnlineAFA
from repro.algorithms.random_baseline import RandomAssignment
from repro.algorithms.recon import Reconciliation

__all__ = [
    "OfflineAlgorithm",
    "OnlineAlgorithm",
    "SolveResult",
    "BatchedReconciliation",
    "run_batched",
    "capacity_bound",
    "combined_bound",
    "full_lp_bound",
    "vendor_lp_bound",
    "LPRounding",
    "FallbackChain",
    "FallbackTier",
    "GammaBounds",
    "calibrate_from_problem",
    "choose_g",
    "estimate_gamma_bounds",
    "observed_efficiencies",
    "GreedyEfficiency",
    "NearestVendor",
    "AdaptiveExponentialThreshold",
    "OnlineAdaptiveFactorAware",
    "StaticThreshold",
    "ThresholdFunction",
    "OnlineStaticThreshold",
    "ExactOptimal",
    "BudgetPacingOnline",
    "RecalibratingOnlineAFA",
    "RandomAssignment",
    "Reconciliation",
]
