"""The NEAREST baseline of Section V-A.

When a customer appears, greedily take the ads of the *nearest* valid
vendors first, ignoring utility: for each vendor in increasing distance
order, send the cheapest affordable ad until the customer's capacity or
the vendors' budgets run out.
"""

from __future__ import annotations

from typing import List

from repro.algorithms.base import OnlineAlgorithm
from repro.core.assignment import AdInstance, Assignment
from repro.core.entities import Customer, distance
from repro.core.problem import MUAAProblem


class NearestVendor(OnlineAlgorithm):
    """Distance-first online heuristic (utility-oblivious)."""

    name = "NEAREST"

    def process_customer(
        self,
        problem: MUAAProblem,
        customer: Customer,
        assignment: Assignment,
    ) -> List[AdInstance]:
        vendor_ids = problem.valid_vendor_ids(customer)
        vendor_ids.sort(
            key=lambda vid: distance(customer, problem.vendors_by_id[vid])
        )
        cheapest = min(problem.ad_types, key=lambda t: t.cost)
        picked: List[AdInstance] = []
        for vendor_id in vendor_ids:
            if len(picked) >= customer.capacity:
                break
            remaining = assignment.remaining_budget(vendor_id) - sum(
                inst.cost for inst in picked if inst.vendor_id == vendor_id
            )
            if cheapest.cost <= remaining + 1e-9:
                picked.append(
                    problem.make_instance(
                        customer.customer_id, vendor_id, cheapest.type_id
                    )
                )
        return picked
