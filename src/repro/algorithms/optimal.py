"""Exact optimal MUAA solver for small instances.

MUAA is NP-hard (Theorem II.1), so this exhaustive branch-and-bound is
only practical on small instances; it exists to measure the empirical
approximation ratio of RECON (Theorem III.1) and the empirical
competitive ratio of O-AFA (Theorem IV.1 / Corollary IV.1) in tests and
ratio benchmarks, and to verify the worked example of the paper's
introduction.

Branching is per valid customer-vendor pair (choose one ad type or
none), ordered by the pair's best utility; the bound adds, for each
remaining pair, its best utility subject to remaining customer
capacities (budgets relaxed), which is admissible.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.algorithms.base import OfflineAlgorithm
from repro.core.assignment import AdInstance, Assignment
from repro.core.problem import MUAAProblem
from repro.exceptions import SolverError

_EPS = 1e-12

#: Default cap on explored search nodes.
DEFAULT_NODE_LIMIT = 5_000_000


class ExactOptimal(OfflineAlgorithm):
    """Exhaustive branch-and-bound over per-pair ad-type choices.

    Args:
        node_limit: Abort with :class:`SolverError` beyond this many
            search nodes (the solver is for small instances only).
    """

    name = "OPTIMAL"

    def __init__(self, node_limit: int = DEFAULT_NODE_LIMIT) -> None:
        self._node_limit = node_limit

    def solve(self, problem: MUAAProblem) -> Assignment:
        # One branching group per valid pair: its positive-utility,
        # plainly-undominated type choices sorted by utility.
        pairs: List[Tuple[Tuple[int, int], List[AdInstance]]] = []
        for customer_id, vendor_id in problem.valid_pairs():
            choices = [
                inst
                for inst in problem.pair_instances(customer_id, vendor_id)
                if inst.utility > 0
                and inst.cost <= problem.budgets[vendor_id] + _EPS
            ]
            if choices:
                choices.sort(key=lambda inst: -inst.utility)
                pairs.append(((customer_id, vendor_id), choices))
        pairs.sort(key=lambda entry: -entry[1][0].utility)

        best_value = 0.0
        best_set: List[AdInstance] = []
        capacity: Dict[int, int] = dict(problem.capacities)
        budget: Dict[int, float] = dict(problem.budgets)
        chosen: List[AdInstance] = []
        nodes = 0

        # Admissible bound: best utility of each remaining pair, capped
        # by per-customer remaining capacity (suffix-computed greedily).
        def bound(index: int, cap: Dict[int, int]) -> float:
            remaining_cap = dict(cap)
            total = 0.0
            for (customer_id, _vid), choices in pairs[index:]:
                if remaining_cap.get(customer_id, 0) > 0:
                    total += choices[0].utility
                    remaining_cap[customer_id] -= 1
            return total

        def dfs(index: int, value: float) -> None:
            nonlocal best_value, best_set, nodes
            nodes += 1
            if nodes > self._node_limit:
                raise SolverError(
                    f"exact solver exceeded {self._node_limit} nodes; "
                    "the instance is too large for OPTIMAL"
                )
            if value > best_value + _EPS:
                best_value = value
                best_set = list(chosen)
            if index >= len(pairs):
                return
            if value + bound(index, capacity) <= best_value + _EPS:
                return
            (customer_id, vendor_id), choices = pairs[index]
            if capacity.get(customer_id, 0) > 0:
                for inst in choices:
                    if inst.cost <= budget[vendor_id] + _EPS:
                        capacity[customer_id] -= 1
                        budget[vendor_id] -= inst.cost
                        chosen.append(inst)
                        dfs(index + 1, value + inst.utility)
                        chosen.pop()
                        budget[vendor_id] += inst.cost
                        capacity[customer_id] += 1
            dfs(index + 1, value)  # skip the pair

        dfs(0, 0.0)

        assignment = problem.new_assignment()
        for inst in best_set:
            assignment.add(inst, strict=True)
        return assignment
