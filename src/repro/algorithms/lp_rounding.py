"""Full-LP rounding: an additional offline competitor.

Solves the LP relaxation of the entire MUAA ILP (Definition 5) with the
in-tree simplex, then rounds: variables are visited in decreasing
fractional value (ties by utility) and accepted while feasible.  The LP
value itself is a certified upper bound, so the algorithm reports its
own optimality gap.

This is the "one big LP" alternative to RECON's per-vendor
decomposition; it is tighter per instance but the simplex over all
valid triples limits it to small and mid-size instances, which is
precisely why the paper decomposes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.algorithms.base import OfflineAlgorithm
from repro.core.assignment import Assignment
from repro.core.problem import MUAAProblem
from repro.lp.model import LinearProgram
from repro.obs.recorder import recorder


class LPRounding(OfflineAlgorithm):
    """Solve the full MUAA LP, then round greedily by fractional value."""

    name = "LP-ROUND"

    def __init__(self) -> None:
        #: LP relaxation value of the last solved instance (an upper
        #: bound on the integral optimum); ``None`` before any solve.
        self.last_lp_value = None

    def solve(self, problem: MUAAProblem) -> Assignment:
        rec = recorder()
        # Batch-evaluate every pair base up front: with a vectorized
        # utility model this builds the compute engine, so the candidate
        # enumeration below is table lookups instead of per-pair Eq. 4/5.
        problem.warm_utilities()
        with rec.span("lp.build"):
            lp = LinearProgram()
            utilities: Dict[Tuple[int, int, int], float] = {}
            by_customer: Dict[int, List] = {}
            by_vendor: Dict[int, List] = {}
            by_pair: Dict[Tuple[int, int], List] = {}
            for customer_id, vendor_id in problem.valid_pairs():
                for inst in problem.pair_instances(customer_id, vendor_id):
                    if inst.utility <= 0:
                        continue
                    name = (customer_id, vendor_id, inst.type_id)
                    lp.add_variable(name, objective=inst.utility)
                    utilities[name] = inst.utility
                    by_customer.setdefault(customer_id, []).append(name)
                    by_vendor.setdefault(vendor_id, []).append(
                        (name, inst.cost)
                    )
                    by_pair.setdefault((customer_id, vendor_id), []).append(
                        name
                    )

            assignment = problem.new_assignment()
            if not utilities:
                self.last_lp_value = 0.0
                return assignment

            for customer_id, names in by_customer.items():
                lp.add_constraint(
                    {name: 1.0 for name in names},
                    bound=float(problem.capacities.get(customer_id, 0)),
                )
            for vendor_id, entries in by_vendor.items():
                lp.add_constraint(
                    {name: cost for name, cost in entries},
                    bound=problem.budgets[vendor_id],
                )
            for names in by_pair.values():
                lp.add_constraint({name: 1.0 for name in names}, bound=1.0)
        rec.gauge("lp.variables", len(utilities))

        with rec.span("lp.solve", n_variables=len(utilities)):
            solution = lp.solve()
        self.last_lp_value = solution.objective

        with rec.span("lp.round"):
            ranked = sorted(
                utilities,
                key=lambda name: (
                    -solution.x[lp.variable_index(name)],
                    -utilities[name],
                ),
            )
            for name in ranked:
                if solution.x[lp.variable_index(name)] <= 1e-9:
                    break  # zero-valued variables can still be skipped
                customer_id, vendor_id, type_id = name
                assignment.add(
                    problem.make_instance(customer_id, vendor_id, type_id),
                    strict=False,
                )
            # A second pass over the remaining candidates fills any
            # budget the fractional solution left unusable after
            # rounding.
            for name in ranked:
                customer_id, vendor_id, type_id = name
                assignment.add(
                    problem.make_instance(customer_id, vendor_id, type_id),
                    strict=False,
                )
        return assignment
