"""Full-LP rounding: an additional offline competitor.

Solves the LP relaxation of the entire MUAA ILP (Definition 5) with the
in-tree simplex, then rounds: variables are visited in decreasing
fractional value (ties by utility) and accepted while feasible.  The LP
value itself is a certified upper bound, so the algorithm reports its
own optimality gap.

This is the "one big LP" alternative to RECON's per-vendor
decomposition; it is tighter per instance but the simplex over all
valid triples limits it to small and mid-size instances, which is
precisely why the paper decomposes.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.algorithms.base import OfflineAlgorithm
from repro.core.assignment import AdInstance, Assignment
from repro.core.problem import MUAAProblem
from repro.lp.model import LinearProgram
from repro.obs.recorder import recorder


class LPRounding(OfflineAlgorithm):
    """Solve the full MUAA LP, then round greedily by fractional value.

    Args:
        shards: Solve through a spatial shard plan with this many
            shards: one independent LP per shard (peak simplex size is
            the largest shard's triple count), rounded per shard, then
            a cross-shard reconciliation pass restores the global
            capacity constraint on replicated customers.  The summed
            per-shard LP values remain a certified upper bound on the
            integral optimum (sharding only adds constraints to the
            relaxation).  ``1`` (default) keeps the original one-big-LP
            path byte-for-byte.
        shard_plan: Explicit :class:`~repro.sharding.ShardPlan`,
            overriding ``shards``.
    """

    name = "LP-ROUND"

    def __init__(self, shards: int = 1, shard_plan=None) -> None:
        #: LP relaxation value of the last solved instance (an upper
        #: bound on the integral optimum); ``None`` before any solve.
        #: Under sharding: the sum of per-shard LP values, still an
        #: upper bound.
        self.last_lp_value = None
        self._shards = shards
        self._shard_plan = shard_plan

    def _resolve_plan(self, problem: MUAAProblem):
        """The active shard plan, or ``None`` for the unsharded path."""
        if self._shard_plan is None and self._shards <= 1:
            return None
        from repro.sharding import resolve_plan

        return resolve_plan(problem, self._shards, self._shard_plan)

    def _solve_sharded(self, problem: MUAAProblem, plan) -> Assignment:
        """Per-shard LPs + roundings, then global reconciliation.

        Each shard is a complete sub-LP (every vendor's candidates are
        fully inside its shard), solved and rounded with the unsharded
        code on the shard view and released before the next shard's
        simplex is built.  Replicated customers can end up over
        capacity across shards; ``reconcile_capacity`` (RECON's
        violation machinery) restores feasibility deterministically.
        """
        from repro.algorithms.recon import reconcile_capacity

        rec = recorder()
        by_customer: Dict[int, List[AdInstance]] = {}
        spend: Dict[int, float] = {v.vendor_id: 0.0 for v in problem.vendors}
        assigned_pairs: Set[Tuple[int, int]] = set()
        lp_total = 0.0
        for shard in range(plan.n_shards):
            view = plan.problem_for(shard)
            inner = LPRounding()
            with rec.span("lp.shard", shard=shard):
                rounded = inner.solve(view)
            lp_total += inner.last_lp_value or 0.0
            for inst in rounded.instances():
                by_customer.setdefault(inst.customer_id, []).append(inst)
                spend[inst.vendor_id] += inst.cost
                assigned_pairs.add(inst.pair)
            plan.release(shard)
        self.last_lp_value = lp_total

        # Deterministic seed: the sharded LP path has no RNG of its
        # own, and reconciliation order must not depend on anything
        # but the inputs.
        assignment, _ = reconcile_capacity(
            problem, by_customer, spend, assigned_pairs, seed=0
        )
        return assignment

    def solve(self, problem: MUAAProblem) -> Assignment:
        rec = recorder()
        plan = self._resolve_plan(problem)
        if plan is not None:
            with rec.span("lp.solve_sharded", n_shards=plan.n_shards):
                return self._solve_sharded(problem, plan)
        # Batch-evaluate every pair base up front: with a vectorized
        # utility model this builds the compute engine, so the candidate
        # enumeration below is table lookups instead of per-pair Eq. 4/5.
        problem.warm_utilities()
        with rec.span("lp.build"):
            lp = LinearProgram()
            utilities: Dict[Tuple[int, int, int], float] = {}
            by_customer: Dict[int, List] = {}
            by_vendor: Dict[int, List] = {}
            by_pair: Dict[Tuple[int, int], List] = {}
            for customer_id, vendor_id in problem.valid_pairs():
                for inst in problem.pair_instances(customer_id, vendor_id):
                    if inst.utility <= 0:
                        continue
                    name = (customer_id, vendor_id, inst.type_id)
                    lp.add_variable(name, objective=inst.utility)
                    utilities[name] = inst.utility
                    by_customer.setdefault(customer_id, []).append(name)
                    by_vendor.setdefault(vendor_id, []).append(
                        (name, inst.cost)
                    )
                    by_pair.setdefault((customer_id, vendor_id), []).append(
                        name
                    )

            assignment = problem.new_assignment()
            if not utilities:
                self.last_lp_value = 0.0
                return assignment

            for customer_id, names in by_customer.items():
                lp.add_constraint(
                    {name: 1.0 for name in names},
                    bound=float(problem.capacities.get(customer_id, 0)),
                )
            for vendor_id, entries in by_vendor.items():
                lp.add_constraint(
                    {name: cost for name, cost in entries},
                    bound=problem.budgets[vendor_id],
                )
            for names in by_pair.values():
                lp.add_constraint({name: 1.0 for name in names}, bound=1.0)
        rec.gauge("lp.variables", len(utilities))

        with rec.span("lp.solve", n_variables=len(utilities)):
            solution = lp.solve()
        self.last_lp_value = solution.objective

        with rec.span("lp.round"):
            ranked = sorted(
                utilities,
                key=lambda name: (
                    -solution.x[lp.variable_index(name)],
                    -utilities[name],
                ),
            )
            for name in ranked:
                if solution.x[lp.variable_index(name)] <= 1e-9:
                    break  # zero-valued variables can still be skipped
                customer_id, vendor_id, type_id = name
                assignment.add(
                    problem.make_instance(customer_id, vendor_id, type_id),
                    strict=False,
                )
            # A second pass over the remaining candidates fills any
            # budget the fractional solution left unusable after
            # rounding.
            for name in ranked:
                customer_id, vendor_id, type_id = name
                assignment.add(
                    problem.make_instance(customer_id, vendor_id, type_id),
                    strict=False,
                )
        return assignment
