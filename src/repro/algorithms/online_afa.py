"""The Online Adaptive Factor-Aware approach, O-AFA (Section IV, Algorithm 2).

When a customer arrives, O-AFA considers each vendor whose area contains
the customer, picks the vendor's "best" ad type, and keeps the instance
only if its budget efficiency clears an *adaptive threshold*
:math:`\\phi(\\delta_j)` that grows with the vendor's used-budget ratio
:math:`\\delta_j`: ads are pushed freely while budget is plentiful, and
only high-efficiency ads are accepted as the budget depletes.  Among the
surviving candidates the top-:math:`a_i` by efficiency are committed.

With the exponential threshold :math:`\\phi(\\delta) = \\frac{\\gamma_{min}}{e}
\\cdot g^{\\delta}` (g > e) the competitive ratio is
:math:`(\\ln(g) + 1)/\\theta` (Corollary IV.1).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, List, Mapping, Optional

from repro.algorithms.base import OnlineAlgorithm
from repro.core.assignment import AdInstance, Assignment
from repro.core.entities import Customer
from repro.core.problem import MUAAProblem
from repro.engine.engine import MISS

#: Base of the natural logarithm, the lower bound on g.
E = math.e

_EPS = 1e-9


class ThresholdFunction(ABC):
    """Budget-efficiency acceptance threshold :math:`\\phi(\\delta)`.

    Must be monotone non-decreasing in the used-budget ratio
    :math:`\\delta \\in [0, 1]` (assumption 3 of Section IV-B).
    Implementations may differentiate per vendor through the optional
    ``vendor_id`` (the paper's analysis is per-vendor anyway -- each
    vendor's budget is its own knapsack).
    """

    @abstractmethod
    def threshold(
        self, used_budget_ratio: float, vendor_id: Optional[int] = None
    ) -> float:
        """The minimum acceptable efficiency at used ratio ``delta``."""


class AdaptiveExponentialThreshold(ThresholdFunction):
    """The paper's threshold :math:`\\phi(\\delta) = \\gamma_{min}/e \\cdot g^\\delta`.

    Args:
        gamma_min: Lower bound on any instance's budget efficiency.
        g: Growth constant; must exceed :math:`e` (Corollary IV.1).

    Raises:
        ValueError: If ``g <= e`` or ``gamma_min <= 0``.
    """

    def __init__(self, gamma_min: float, g: float) -> None:
        if gamma_min <= 0:
            raise ValueError(f"gamma_min must be positive, got {gamma_min}")
        if g <= E:
            raise ValueError(f"g must exceed e ≈ {E:.5f}, got {g}")
        self.gamma_min = gamma_min
        self.g = g

    def threshold(
        self, used_budget_ratio: float, vendor_id: Optional[int] = None
    ) -> float:
        return (self.gamma_min / E) * self.g ** used_budget_ratio

    @property
    def competitive_ratio_bound(self) -> float:
        """The Corollary IV.1 factor :math:`\\ln(g) + 1` (divide by
        :math:`\\theta` of the instance to get the full ratio)."""
        return math.log(self.g) + 1.0


class PerVendorExponentialThreshold(ThresholdFunction):
    """Per-vendor exponential thresholds (a Section IV-C refinement).

    Theorem IV.1's analysis is per vendor, so nothing requires one
    global :math:`(\\gamma_{min}, g)`: a vendor in a dense downtown sees
    very different efficiency distributions than a suburban one.  This
    threshold keeps an :class:`AdaptiveExponentialThreshold` per vendor
    and falls back to a global default for vendors without their own
    calibration.

    Args:
        per_vendor: vendor_id -> ``(gamma_min, g)`` pairs.
        default: Fallback threshold for uncalibrated vendors.
    """

    def __init__(
        self,
        per_vendor: Mapping[int, "AdaptiveExponentialThreshold"],
        default: "AdaptiveExponentialThreshold",
    ) -> None:
        self._per_vendor: Dict[int, AdaptiveExponentialThreshold] = dict(
            per_vendor
        )
        self._default = default

    def threshold(
        self, used_budget_ratio: float, vendor_id: Optional[int] = None
    ) -> float:
        chosen = self._per_vendor.get(vendor_id, self._default)
        return chosen.threshold(used_budget_ratio)


class StaticThreshold(ThresholdFunction):
    """A constant threshold; the non-adaptive baseline of Section IV-A.

    Args:
        value: Instances below this efficiency are always rejected.
    """

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"threshold must be >= 0, got {value}")
        self.value = value

    def threshold(
        self, used_budget_ratio: float, vendor_id: Optional[int] = None
    ) -> float:
        return self.value


class OnlineAdaptiveFactorAware(OnlineAlgorithm):
    """Algorithm 2 (O-AFA).

    Args:
        threshold: The acceptance threshold function; the paper's
            adaptive exponential by default when ``gamma_min``/``g`` are
            given instead.
        gamma_min: Convenience constructor argument for the default
            adaptive exponential threshold.
        g: Growth constant for the default threshold.

    Raises:
        ValueError: If neither a threshold nor (gamma_min, g) is given.
    """

    name = "ONLINE"

    def __init__(
        self,
        threshold: ThresholdFunction = None,
        gamma_min: float = None,
        g: float = None,
    ) -> None:
        if threshold is None:
            if gamma_min is None or g is None:
                raise ValueError(
                    "provide either a ThresholdFunction or both "
                    "gamma_min and g"
                )
            threshold = AdaptiveExponentialThreshold(gamma_min, g)
        self.threshold_function = threshold

    @classmethod
    def calibrated(
        cls,
        problem: MUAAProblem,
        sample_customers: Optional[int] = 500,
        seed: Optional[int] = None,
        per_vendor: bool = False,
    ) -> "OnlineAdaptiveFactorAware":
        """O-AFA with thresholds calibrated from a historical instance.

        Calibration batch-scores the instance's candidate edges through
        the compute engine when the utility model supports it, so this
        is cheap even on large historical instances.

        Args:
            problem: The historical instance to calibrate against.
            sample_customers: Customer sample size (see
                :func:`repro.algorithms.calibration.observed_efficiencies`).
            seed: RNG seed for the customer sampling.
            per_vendor: Calibrate a per-vendor threshold (Section IV-C
                refinement) with the global bounds as fallback.

        Raises:
            ValueError: If the instance has no positive-utility candidate.
        """
        from repro.algorithms.calibration import (
            calibrate_from_problem,
            calibrate_per_vendor,
        )

        bounds = calibrate_from_problem(
            problem, sample_customers=sample_customers, seed=seed
        )
        default = AdaptiveExponentialThreshold(bounds.gamma_min, bounds.g)
        if not per_vendor:
            return cls(threshold=default)
        vendor_bounds = calibrate_per_vendor(
            problem, sample_customers=sample_customers, seed=seed
        )
        return cls(
            threshold=PerVendorExponentialThreshold(
                {
                    vendor_id: AdaptiveExponentialThreshold(b.gamma_min, b.g)
                    for vendor_id, b in vendor_bounds.items()
                },
                default,
            )
        )

    def process_customer(
        self,
        problem: MUAAProblem,
        customer: Customer,
        assignment: Assignment,
    ) -> List[AdInstance]:
        # Line 2: valid vendors by the spatial constraint.
        vendor_ids = problem.valid_vendor_ids(customer)
        potential: List[AdInstance] = []
        # Hot path: with a built compute engine, skip the per-call
        # dispatch in ``problem.best_instance_for_pair`` (the engine
        # covers every candidate edge, so its lookups never miss).
        engine = problem.engine
        lookup = engine.best_for_pair if engine is not None else None
        customer_id = customer.customer_id
        spend_for_vendor = assignment.spend_for_vendor
        budgets = problem.budgets
        for vendor_id in vendor_ids:
            budget = budgets[vendor_id]
            if budget <= 0:
                continue
            spent = spend_for_vendor(vendor_id)
            remaining = budget - spent
            # Line 4: the vendor's "best" (highest-efficiency) affordable
            # ad type for this customer.
            if lookup is not None:
                best = lookup(customer_id, vendor_id, max_cost=remaining)
                if best is MISS:
                    best = problem.best_instance_for_pair(
                        customer_id,
                        vendor_id,
                        by="efficiency",
                        max_cost=remaining,
                    )
            else:
                best = problem.best_instance_for_pair(
                    customer_id,
                    vendor_id,
                    by="efficiency",
                    max_cost=remaining,
                )
            if best is None or best.utility <= 0:
                continue
            # Line 5: adaptive acceptance test on the used-budget ratio.
            delta = spent / budget
            phi = self.threshold_function.threshold(delta, vendor_id)
            if best.efficiency >= phi - _EPS:
                potential.append(best)
        # Lines 7-8: keep the top-a_i instances by budget efficiency.
        if len(potential) > customer.capacity:
            potential.sort(key=lambda inst: -inst.efficiency)
            potential = potential[: customer.capacity]
        return potential
