"""The RANDOM baseline of Section V-A.

Randomly assigns vendors' ads to valid customers under the budget (and
capacity) constraints: candidate pairs are visited in random order and
each is given a uniformly random ad type, kept only if still feasible.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.algorithms.base import OfflineAlgorithm
from repro.core.assignment import Assignment
from repro.core.problem import MUAAProblem


class RandomAssignment(OfflineAlgorithm):
    """Uniformly random feasible assignment.

    Args:
        seed: RNG seed; runs are reproducible for a fixed seed.
        saturate: When true (default), keep sampling until no candidate
            remains feasible, matching the paper's description of
            spending budgets on random valid customers; when false, each
            pair is considered exactly once.
    """

    name = "RANDOM"

    def __init__(self, seed: Optional[int] = None, saturate: bool = True) -> None:
        self._seed = seed
        self._saturate = saturate

    def solve(self, problem: MUAAProblem) -> Assignment:
        rng = np.random.default_rng(self._seed)
        assignment = problem.new_assignment()
        pairs: List[tuple] = list(problem.valid_pairs())
        if not pairs:
            return assignment
        order = rng.permutation(len(pairs))
        type_ids = [t.type_id for t in problem.ad_types]
        type_draws = rng.integers(len(type_ids), size=len(pairs))

        for index in order:
            customer_id, vendor_id = pairs[index]
            type_id = type_ids[int(type_draws[index])]
            instance = problem.make_instance(customer_id, vendor_id, type_id)
            if not assignment.add(instance, strict=False) and self._saturate:
                # The random type may simply be unaffordable; try the
                # cheapest affordable type before giving up on the pair
                # (cheap pre-checks avoid re-evaluating hopeless pairs).
                if (
                    assignment.ads_for_customer(customer_id)
                    >= problem.capacities[customer_id]
                ):
                    continue
                remaining = assignment.remaining_budget(vendor_id)
                if remaining + 1e-9 < problem.min_cost:
                    continue
                fallback = problem.best_instance_for_pair(
                    customer_id, vendor_id, by="utility", max_cost=remaining
                )
                if fallback is not None:
                    assignment.add(fallback, strict=False)
        return assignment
