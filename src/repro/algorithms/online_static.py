"""Static-threshold online baseline (ablation for O-AFA's adaptivity).

Section IV-A motivates the adaptive threshold by noting that "an
adaptive threshold will perform better than a static threshold".  This
baseline is O-AFA with :math:`\\phi(\\delta)` held constant, so the
ablation benchmark can quantify that claim on our workloads.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.online_afa import OnlineAdaptiveFactorAware, StaticThreshold
from repro.core.problem import MUAAProblem


class OnlineStaticThreshold(OnlineAdaptiveFactorAware):
    """O-AFA with a constant acceptance threshold.

    Args:
        threshold_value: Efficiency below which instances are rejected
            regardless of remaining budget.  ``0.0`` degenerates to
            "accept everything affordable", i.e. first-come-first-served.
    """

    name = "ONLINE-STATIC"

    def __init__(self, threshold_value: float = 0.0) -> None:
        super().__init__(threshold=StaticThreshold(threshold_value))

    @classmethod
    def calibrated(
        cls,
        problem: MUAAProblem,
        sample_customers: Optional[int] = 500,
        seed: Optional[int] = None,
        per_vendor: bool = False,
    ) -> "OnlineStaticThreshold":
        """The static baseline pinned to the calibrated
        :math:`\\gamma_{min}` (engine-backed, like O-AFA's).

        ``per_vendor`` is accepted for signature compatibility but a
        static baseline has one global threshold by definition.
        """
        from repro.algorithms.calibration import calibrate_from_problem

        bounds = calibrate_from_problem(
            problem, sample_customers=sample_customers, seed=seed
        )
        return cls(threshold_value=bounds.gamma_min)
