"""Static-threshold online baseline (ablation for O-AFA's adaptivity).

Section IV-A motivates the adaptive threshold by noting that "an
adaptive threshold will perform better than a static threshold".  This
baseline is O-AFA with :math:`\\phi(\\delta)` held constant, so the
ablation benchmark can quantify that claim on our workloads.
"""

from __future__ import annotations

from repro.algorithms.online_afa import OnlineAdaptiveFactorAware, StaticThreshold


class OnlineStaticThreshold(OnlineAdaptiveFactorAware):
    """O-AFA with a constant acceptance threshold.

    Args:
        threshold_value: Efficiency below which instances are rejected
            regardless of remaining budget.  ``0.0`` degenerates to
            "accept everything affordable", i.e. first-come-first-served.
    """

    name = "ONLINE-STATIC"

    def __init__(self, threshold_value: float = 0.0) -> None:
        super().__init__(threshold=StaticThreshold(threshold_value))
