"""Graceful-degradation fallback chain for online serving.

A production broker never answers "crash": when the primary decision
path cannot run -- its utility service times out, its spatial index's
circuit breaker is open -- it degrades to a cheaper policy and keeps
serving.  :class:`FallbackChain` encodes that as an ordered list of
online algorithms: the first tier that decides without raising a
resilience error wins, and every decision records which tier produced
it so degraded traffic is measurable.

The canonical chain (used by
:class:`~repro.resilience.broker.ResilientBroker`) is

    O-AFA  ->  static-threshold O-AFA  ->  nearest-vendor baseline

mirroring how the quality of the decision (adaptive, utility-aware,
utility-oblivious) degrades with the health of the dependencies each
tier needs.
"""

from __future__ import annotations

import logging
from typing import List, Optional, Sequence

from repro.algorithms.base import OnlineAlgorithm
from repro.core.assignment import AdInstance, Assignment
from repro.core.entities import Customer
from repro.core.problem import MUAAProblem
from repro.exceptions import ResilienceError

logger = logging.getLogger(__name__)


class FallbackTier:
    """One tier of a fallback chain.

    Args:
        algorithm: The online algorithm of this tier.
        problem: Optional problem override.  Tiers normally see the
            problem the simulator passes in (possibly a guarded /
            fault-injected view); a tier meant to survive dependency
            outages -- e.g. a last-resort baseline that only needs
            local data -- is given the pristine problem here instead.
    """

    def __init__(
        self,
        algorithm: OnlineAlgorithm,
        problem: Optional[MUAAProblem] = None,
    ) -> None:
        self.algorithm = algorithm
        self.problem = problem

    @property
    def name(self) -> str:
        """The tier's display name (its algorithm's name)."""
        return self.algorithm.name


class FallbackChain(OnlineAlgorithm):
    """Try each tier in order; first tier to decide cleanly wins.

    Only resilience errors (:class:`~repro.exceptions.ResilienceError`:
    transient faults that exhausted their retries, open breakers, blown
    deadlines) trigger fallback -- programming errors still propagate.
    If *every* tier fails the last error propagates; callers that must
    never crash (the broker) catch it and drop the decision.

    Attributes:
        last_tier_used: Index of the tier that served the most recent
            decision (``None`` before any decision).
        decisions_by_tier: Per-tier decision counts since ``reset``.
        degraded_decisions: Decisions served by any tier but the first.
    """

    name = "FALLBACK"

    def __init__(self, tiers: Sequence[FallbackTier]) -> None:
        if not tiers:
            raise ValueError("a fallback chain needs at least one tier")
        self.tiers: List[FallbackTier] = list(tiers)
        self.name = " > ".join(tier.name for tier in self.tiers)
        self.last_tier_used: Optional[int] = None
        self.decisions_by_tier: List[int] = [0] * len(self.tiers)
        self.degraded_decisions = 0

    def reset(self, problem: MUAAProblem) -> None:
        self.last_tier_used = None
        self.decisions_by_tier = [0] * len(self.tiers)
        self.degraded_decisions = 0
        for tier in self.tiers:
            tier.algorithm.reset(tier.problem or problem)

    def process_customer(
        self,
        problem: MUAAProblem,
        customer: Customer,
        assignment: Assignment,
    ) -> List[AdInstance]:
        last_error: Optional[ResilienceError] = None
        for index, tier in enumerate(self.tiers):
            try:
                picked = tier.algorithm.process_customer(
                    tier.problem or problem, customer, assignment
                )
            except ResilienceError as exc:
                last_error = exc
                logger.info(
                    "tier %d (%s) failed for customer %d: %s; falling back",
                    index,
                    tier.name,
                    customer.customer_id,
                    exc,
                )
                continue
            self.last_tier_used = index
            self.decisions_by_tier[index] += 1
            if index > 0:
                self.degraded_decisions += 1
            return picked
        assert last_error is not None
        raise last_error
