"""Exception hierarchy for the MUAA reproduction library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one base class at the library boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class InvalidEntityError(ReproError):
    """An entity (customer, vendor, ad type) has invalid attributes."""


class InvalidProblemError(ReproError):
    """A MUAA problem instance is internally inconsistent."""


class ConstraintViolationError(ReproError):
    """An assignment violates a MUAA constraint.

    Raised when an :class:`~repro.core.assignment.Assignment` is asked to
    add an ad instance that would break the range, capacity, budget, or
    one-ad-per-pair constraints in strict mode.
    """


class InfeasibleError(ReproError):
    """An optimisation problem has no feasible solution."""


class UnboundedError(ReproError):
    """A linear program is unbounded in the direction of optimisation."""


class SolverError(ReproError):
    """A solver failed to converge or hit an internal limit."""


class TaxonomyError(ReproError):
    """The tag taxonomy is malformed (cycles, unknown tags, ...)."""


class DataFormatError(ReproError):
    """An external data file does not match the expected schema."""
