"""Exception hierarchy for the MUAA reproduction library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one base class at the library boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class InvalidEntityError(ReproError):
    """An entity (customer, vendor, ad type) has invalid attributes."""


class InvalidProblemError(ReproError):
    """A MUAA problem instance is internally inconsistent."""


class ConstraintViolationError(ReproError):
    """An assignment violates a MUAA constraint.

    Raised when an :class:`~repro.core.assignment.Assignment` is asked to
    add an ad instance that would break the range, capacity, budget, or
    one-ad-per-pair constraints in strict mode.
    """


class InfeasibleError(ReproError):
    """An optimisation problem has no feasible solution."""


class UnboundedError(ReproError):
    """A linear program is unbounded in the direction of optimisation."""


class SolverError(ReproError):
    """A solver failed to converge or hit an internal limit."""


class TaxonomyError(ReproError):
    """The tag taxonomy is malformed (cycles, unknown tags, ...)."""


class ResilienceError(ReproError):
    """Base class for serving-layer failures the broker can survive.

    These are the errors the :mod:`repro.resilience` policies are built
    around: they signal *operational* trouble (a dependency hiccup, a
    tripped breaker, a blown deadline) rather than a modelling or
    feasibility bug, so the fallback chain may catch them wholesale.
    """


class TransientError(ResilienceError):
    """A dependency call failed in a retriable way.

    Models timeouts, dropped connections and other faults where the
    same call is expected to succeed if repeated; retry policies treat
    exactly this type (and its subclasses) as retriable.
    """


class CircuitOpenError(ResilienceError):
    """A call was refused because the dependency's circuit breaker is open.

    Raised without attempting the underlying call; callers should fall
    back to a degraded mode instead of retrying immediately.
    """


class DeadlineExceededError(ResilienceError):
    """A call (or decision) took longer than its configured deadline."""


class ShardUnavailableError(ResilienceError):
    """A cluster shard worker cannot serve requests.

    Raised by a shard host when its worker process is dead (killed,
    crashed, or not yet restarted) or its transport channel is broken.
    Routers treat this as the signal to fail over to the degradation
    ladder and let the control plane schedule a restart.
    """


class DataFormatError(ReproError):
    """An external data file does not match the expected schema."""


class ArtifactError(DataFormatError):
    """A persisted engine/plan artifact cannot be used.

    Raised by :mod:`repro.store` when an on-disk column artifact is
    corrupted or truncated, carries an unknown schema version, or does
    not match the problem it is being attached to (different dtype
    policy, fingerprint, or churn epoch).
    """
