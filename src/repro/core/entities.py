"""Entity model for the MUAA problem: customers, vendors, and ad types.

These mirror Definitions 1-3 of the paper.  Entities are immutable value
objects; all mutable bookkeeping (budget spent so far, ads received so
far) lives in :class:`~repro.core.assignment.Assignment` and
:class:`~repro.stream.simulator.BudgetState` instead, so a single problem
instance can be solved by many algorithms without copying.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import InvalidEntityError


@dataclass(frozen=True)
class AdType:
    """An ad format the broker can use (Definition 3).

    Attributes:
        type_id: Index of the ad type within the catalogue.
        name: Human-readable label, e.g. ``"text-link"``.
        cost: Price :math:`c_k` charged against the vendor budget per ad.
        effectiveness: Utility effectiveness :math:`\\beta_k \\in (0, 1]`,
            the probability that a viewed ad leads to an action.
    """

    type_id: int
    name: str
    cost: float
    effectiveness: float

    def __post_init__(self) -> None:
        if self.cost <= 0:
            raise InvalidEntityError(
                f"ad type {self.name!r}: cost must be positive, got {self.cost}"
            )
        if not 0 < self.effectiveness <= 1:
            raise InvalidEntityError(
                f"ad type {self.name!r}: effectiveness must be in (0, 1], "
                f"got {self.effectiveness}"
            )


@dataclass(frozen=True)
class Customer:
    """A spatial customer (Definition 1).

    Attributes:
        customer_id: Index of the customer within the problem instance.
        location: ``(x, y)`` position at the customer's timestamp.
        capacity: Maximum number :math:`a_i` of ads the customer accepts.
        view_probability: Probability :math:`p_i` of clicking/checking a
            received ad.
        interests: Interest vector :math:`\\psi_i` over the tag universe
            (entries in ``[0, 1]``); ``None`` when utilities are given
            directly by a tabular model.
        arrival_time: Timestamp :math:`\\varphi` in hours ``[0, 24)`` at
            which the customer appears.  In the online setting customers
            are processed in arrival-time order.
    """

    customer_id: int
    location: Tuple[float, float]
    capacity: int
    view_probability: float
    interests: Optional[np.ndarray] = field(default=None, repr=False)
    arrival_time: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise InvalidEntityError(
                f"customer {self.customer_id}: capacity must be >= 0, "
                f"got {self.capacity}"
            )
        if not 0 <= self.view_probability <= 1:
            raise InvalidEntityError(
                f"customer {self.customer_id}: view probability must be in "
                f"[0, 1], got {self.view_probability}"
            )
        if not all(math.isfinite(c) for c in self.location):
            raise InvalidEntityError(
                f"customer {self.customer_id}: non-finite location "
                f"{self.location}"
            )


@dataclass(frozen=True)
class Vendor:
    """A spatial vendor (Definition 2).

    Attributes:
        vendor_id: Index of the vendor within the problem instance.
        location: ``(x, y)`` position of the vendor (static).
        radius: Radius :math:`r_j` of the circular area within which the
            vendor wants its ads delivered.
        budget: Total budget :math:`B_j` the vendor deposited with the
            broker.
        tags: Tag vector :math:`\\psi_j` over the tag universe; ``None``
            when utilities are given directly by a tabular model.
    """

    vendor_id: int
    location: Tuple[float, float]
    radius: float
    budget: float
    tags: Optional[np.ndarray] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise InvalidEntityError(
                f"vendor {self.vendor_id}: radius must be >= 0, "
                f"got {self.radius}"
            )
        if self.budget < 0:
            raise InvalidEntityError(
                f"vendor {self.vendor_id}: budget must be >= 0, "
                f"got {self.budget}"
            )
        if not all(math.isfinite(c) for c in self.location):
            raise InvalidEntityError(
                f"vendor {self.vendor_id}: non-finite location "
                f"{self.location}"
            )


def distance(customer: Customer, vendor: Vendor) -> float:
    """Euclidean distance :math:`d(u_i, v_j)` between a customer and vendor."""
    dx = customer.location[0] - vendor.location[0]
    dy = customer.location[1] - vendor.location[1]
    return math.hypot(dx, dy)
