"""Full feasibility validation of assignments against a MUAA problem.

:class:`~repro.core.assignment.Assignment` enforces capacity, budget and
pair-uniqueness incrementally, but not the spatial range constraint and
not consistency of the recorded utilities/costs.  This module checks
everything, and is used in tests and as a post-condition on every
algorithm's output.

It also hosts :func:`validate_problem_entities`, the construction-time
gate of :class:`~repro.core.problem.MUAAProblem`: a NaN coordinate or a
non-positive vendor radius does not raise anywhere downstream -- it
silently corrupts grid binning (``floor(nan / cell)`` and zero-area
advertising circles), so it must be rejected before any index is built.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence

from repro.core.assignment import Assignment
from repro.core.entities import Customer, Vendor
from repro.core.problem import MUAAProblem
from repro.exceptions import InvalidProblemError

#: Float tolerance for budget and utility comparisons.
TOLERANCE = 1e-6


def validate_problem_entities(
    customers: Sequence[Customer], vendors: Sequence[Vendor]
) -> None:
    """Reject entity values that would silently corrupt spatial state.

    The entity ``__post_init__`` checks catch most bad values, but they
    can be bypassed (deserialised or mutated objects) and they admit
    two values that are poison to the spatial layer: a NaN radius
    (``nan < 0`` is false) and a zero radius (a vendor whose candidate
    set is almost surely empty yet still occupies a grid cell and
    dilutes the cell-size heuristics).  Problem construction therefore
    re-checks:

    * every customer/vendor coordinate is finite,
    * every vendor radius is finite and strictly positive,
    * every vendor budget is finite.

    Raises:
        InvalidProblemError: Naming the first offending entity.
    """
    for customer in customers:
        if not all(math.isfinite(c) for c in customer.location):
            raise InvalidProblemError(
                f"customer {customer.customer_id}: non-finite location "
                f"{customer.location}"
            )
    for vendor in vendors:
        if not all(math.isfinite(c) for c in vendor.location):
            raise InvalidProblemError(
                f"vendor {vendor.vendor_id}: non-finite location "
                f"{vendor.location}"
            )
        if not math.isfinite(vendor.radius) or vendor.radius <= 0:
            raise InvalidProblemError(
                f"vendor {vendor.vendor_id}: radius must be finite and "
                f"positive, got {vendor.radius}"
            )
        if not math.isfinite(vendor.budget):
            raise InvalidProblemError(
                f"vendor {vendor.vendor_id}: non-finite budget "
                f"{vendor.budget}"
            )


@dataclass
class ValidationReport:
    """Outcome of validating an assignment.

    Attributes:
        violations: Human-readable description of each violation found.
    """

    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no violation was found."""
        return not self.violations

    def __bool__(self) -> bool:
        return self.ok


def validate_assignment(
    problem: MUAAProblem, assignment: Assignment
) -> ValidationReport:
    """Check all four constraints of Definition 5 plus value consistency.

    Returns:
        A report listing every violation (empty when feasible).
    """
    report = ValidationReport()
    ads_per_customer = {}
    spend_per_vendor = {}
    seen_pairs = set()

    for instance in assignment:
        cid, vid, tid = instance.customer_id, instance.vendor_id, instance.type_id
        if cid not in problem.customers_by_id:
            report.violations.append(f"unknown customer {cid}")
            continue
        if vid not in problem.vendors_by_id:
            report.violations.append(f"unknown vendor {vid}")
            continue
        if tid not in problem.ad_types_by_id:
            report.violations.append(f"unknown ad type {tid}")
            continue

        if instance.pair in seen_pairs:
            report.violations.append(f"duplicate pair {instance.pair}")
        seen_pairs.add(instance.pair)

        customer = problem.customers_by_id[cid]
        vendor = problem.vendors_by_id[vid]
        if not problem.is_valid_pair(customer, vendor):
            report.violations.append(
                f"pair {instance.pair}: customer outside vendor radius"
            )

        expected_utility = problem.utility(cid, vid, tid)
        if abs(instance.utility - expected_utility) > TOLERANCE:
            report.violations.append(
                f"pair {instance.pair}: recorded utility {instance.utility} "
                f"!= model utility {expected_utility}"
            )
        expected_cost = problem.ad_types_by_id[tid].cost
        if abs(instance.cost - expected_cost) > TOLERANCE:
            report.violations.append(
                f"pair {instance.pair}: recorded cost {instance.cost} "
                f"!= catalogue cost {expected_cost}"
            )

        ads_per_customer[cid] = ads_per_customer.get(cid, 0) + 1
        spend_per_vendor[vid] = spend_per_vendor.get(vid, 0.0) + instance.cost

    for cid, count in ads_per_customer.items():
        capacity = problem.capacities.get(cid, 0)
        if count > capacity:
            report.violations.append(
                f"customer {cid}: {count} ads exceed capacity {capacity}"
            )
    for vid, spend in spend_per_vendor.items():
        budget = problem.budgets.get(vid, 0.0)
        if spend > budget + TOLERANCE:
            report.violations.append(
                f"vendor {vid}: spend {spend} exceeds budget {budget}"
            )
    return report
