"""The Theorem II.1 reduction: 0-1 knapsack -> MUAA, as executable code.

The paper proves MUAA NP-hard by mapping a knapsack instance to a MUAA
instance with one customer, one vendor, and one ad type per item: ad
costs are the item weights, utilities the item values, the vendor
budget the knapsack capacity, and the customer's ad limit the number of
items (so it never binds).  This module implements that mapping so the
reduction is *checkable*: solving the reduced MUAA with any exact MUAA
solver solves the original knapsack (see
``tests/core/test_reduction.py``).

One wrinkle makes the mapping executable rather than merely prose: the
paper assigns arbitrary utilities :math:`\\lambda_{00i} = x_i` directly,
but Definition 5's pair-uniqueness constraint allows only one ad per
customer-vendor pair.  The standard fix (also implicit in the paper's
"n valid ad assignment instances") is one *customer clone* per item;
each clone accepts one ad and only item i's type has positive utility
for clone i, realised here with a tabular utility model.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Set, Tuple

from repro.core.assignment import Assignment
from repro.core.entities import AdType, Customer, Vendor
from repro.core.problem import MUAAProblem
from repro.exceptions import InvalidProblemError
from repro.utility.model import TabularUtilityModel


def knapsack_to_muaa(
    values: Sequence[float],
    weights: Sequence[float],
    capacity: float,
) -> Tuple[MUAAProblem, Callable[[Assignment], Set[int]]]:
    """Map a 0-1 knapsack instance to an equivalent MUAA instance.

    Args:
        values: Item values :math:`x_i > 0`.
        weights: Item weights :math:`w_i > 0`, aligned with ``values``.
        capacity: Knapsack capacity :math:`W \\ge 0`.

    Returns:
        ``(problem, decode)`` where ``decode`` maps any MUAA assignment
        back to the selected item indices.  By construction the optimal
        MUAA utility equals the optimal knapsack value.

    Raises:
        InvalidProblemError: On misaligned inputs or non-positive
            values/weights.
    """
    if len(values) != len(weights):
        raise InvalidProblemError(
            f"{len(values)} values but {len(weights)} weights"
        )
    if any(v <= 0 for v in values) or any(w <= 0 for w in weights):
        raise InvalidProblemError("values and weights must be positive")
    n = len(values)

    # One ad type per item: cost = weight.  Effectiveness is a dummy
    # (the tabular preferences carry the actual values); it must only
    # be positive and <= 1.
    ad_types = [
        AdType(type_id=i, name=f"item-{i}", cost=float(weights[i]),
               effectiveness=1.0)
        for i in range(n)
    ]
    # One customer clone per item, all at the vendor's location.
    customers = [
        Customer(customer_id=i, location=(0.0, 0.0), capacity=1,
                 view_probability=1.0)
        for i in range(n)
    ]
    vendor = Vendor(vendor_id=0, location=(0.0, 0.0), radius=1.0,
                    budget=float(capacity))

    # Clone i values only its own item's type: utility(i, 0, k) equals
    # values[i] when k == i and 0 otherwise (the item-locked model
    # below), so selecting item i's ad for clone i is the only way to
    # realise value x_i, at budget cost w_i -- the knapsack decision.
    preferences = {(i, 0): float(values[i]) for i in range(n)}
    distances = {(i, 0): 1.0 for i in range(n)}
    model = _ItemLockedUtilityModel(preferences, distances)
    problem = MUAAProblem(
        customers=customers,
        vendors=[vendor],
        ad_types=ad_types,
        utility_model=model,
    )

    def decode(assignment: Assignment) -> Set[int]:
        """Selected knapsack items from a MUAA assignment."""
        return {
            inst.customer_id
            for inst in assignment
            if inst.type_id == inst.customer_id and inst.utility > 0
        }

    return problem, decode


class _ItemLockedUtilityModel(TabularUtilityModel):
    """Tabular model where clone i only values ad type i.

    Overrides Eq. 4's type factor: utility is ``values[i]`` for the
    matching type and 0 otherwise, which is exactly the paper's
    ":math:`\\lambda_{00i} = x_i`" assignment expressed through the
    model interface.
    """

    type_sensitive = True

    def utility(self, customer, vendor, ad_type):
        if ad_type.type_id != customer.customer_id:
            return 0.0
        return self.pair_base(customer, vendor)


def knapsack_brute_force(
    values: Sequence[float],
    weights: Sequence[float],
    capacity: float,
) -> Tuple[float, Set[int]]:
    """Reference exhaustive knapsack solver (for the equivalence test)."""
    n = len(values)
    best_value = 0.0
    best_set: Set[int] = set()
    for mask in range(1 << n):
        weight = value = 0.0
        chosen: List[int] = []
        for i in range(n):
            if mask >> i & 1:
                weight += weights[i]
                value += values[i]
                chosen.append(i)
        if weight <= capacity + 1e-9 and value > best_value:
            best_value = value
            best_set = set(chosen)
    return best_value, best_set
