"""Serialisation of MUAA instances to portable JSON.

Two use cases:

* **Round-trip** a tabular-utility instance exactly (test fixtures,
  regression corpora, sharing a failing case).
* **Freeze** any instance -- including taxonomy-utility ones, whose
  vectors and activity curves do not serialise -- into an equivalent
  tabular instance: every valid pair's type-independent utility base is
  evaluated once and stored, so all algorithms produce identical
  results on the frozen copy.

The JSON schema is versioned; interest/tag vectors are *not* stored
(they are inputs to the utility model, which freezing replaces).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Set, Tuple, Union

from repro.core.entities import AdType, Customer, Vendor
from repro.core.problem import MUAAProblem
from repro.exceptions import DataFormatError
from repro.utility.model import TabularUtilityModel

SCHEMA_VERSION = 1


def freeze(problem: MUAAProblem) -> MUAAProblem:
    """An equivalent instance with tabulated utilities.

    The frozen instance stores, per valid pair, a preference value that
    reproduces the original pair base exactly (distance is pinned to 1
    and the preference absorbs ``base / p_i``); pair validity is pinned
    to the original's valid-pair set, so custom validators survive.

    Customers with zero view probability cannot have their base encoded
    this way, but their base is necessarily irrelevant (Eq. 4 multiplies
    by :math:`p_i`), so their preference is stored as 0.
    """
    preferences: Dict[Tuple[int, int], float] = {}
    valid_pairs: Set[Tuple[int, int]] = set()
    for customer_id, vendor_id in problem.valid_pairs():
        valid_pairs.add((customer_id, vendor_id))
        customer = problem.customers_by_id[customer_id]
        vendor = problem.vendors_by_id[vendor_id]
        base = problem.utility_model.pair_base(customer, vendor)
        if customer.view_probability > 0:
            preferences[(customer_id, vendor_id)] = (
                base / customer.view_probability
            )
        else:
            preferences[(customer_id, vendor_id)] = 0.0
    distances = {pair: 1.0 for pair in preferences}
    customers = [
        Customer(
            customer_id=c.customer_id,
            location=c.location,
            capacity=c.capacity,
            view_probability=c.view_probability,
            arrival_time=c.arrival_time,
        )
        for c in problem.customers
    ]
    vendors = [
        Vendor(
            vendor_id=v.vendor_id,
            location=v.location,
            radius=v.radius,
            budget=v.budget,
        )
        for v in problem.vendors
    ]
    return MUAAProblem(
        customers=customers,
        vendors=vendors,
        ad_types=problem.ad_types,
        utility_model=TabularUtilityModel(
            preferences=preferences, distances=distances
        ),
        pair_validator=lambda c, v: (c.customer_id, v.vendor_id)
        in valid_pairs,
    )


def problem_to_dict(problem: MUAAProblem) -> dict:
    """Serialise a tabular-utility instance to a JSON-ready dict.

    Raises:
        DataFormatError: If the utility model is not tabular (call
            :func:`freeze` first).
    """
    model = problem.utility_model
    if not isinstance(model, TabularUtilityModel):
        raise DataFormatError(
            "only tabular-utility problems serialise directly; "
            "freeze(problem) first"
        )
    valid_pairs = sorted(problem.valid_pairs())
    return {
        "version": SCHEMA_VERSION,
        "customers": [
            {
                "id": c.customer_id,
                "location": list(c.location),
                "capacity": c.capacity,
                "view_probability": c.view_probability,
                "arrival_time": c.arrival_time,
            }
            for c in problem.customers
        ],
        "vendors": [
            {
                "id": v.vendor_id,
                "location": list(v.location),
                "radius": v.radius,
                "budget": v.budget,
            }
            for v in problem.vendors
        ],
        "ad_types": [
            {
                "id": t.type_id,
                "name": t.name,
                "cost": t.cost,
                "effectiveness": t.effectiveness,
            }
            for t in problem.ad_types
        ],
        "utility": {
            "kind": "tabular",
            "preferences": [
                [i, j, value]
                for (i, j), value in sorted(model._preferences.items())
            ],
            "distances": (
                [
                    [i, j, value]
                    for (i, j), value in sorted(model._distances.items())
                ]
                if model._distances is not None
                else None
            ),
            "default_preference": model._default,
        },
        "valid_pairs": [[i, j] for i, j in valid_pairs],
    }


def problem_from_dict(document: dict) -> MUAAProblem:
    """Reconstruct an instance from :func:`problem_to_dict` output.

    Raises:
        DataFormatError: On schema mismatches.
    """
    try:
        if document["version"] != SCHEMA_VERSION:
            raise DataFormatError(
                f"unsupported schema version {document['version']}"
            )
        customers = [
            Customer(
                customer_id=entry["id"],
                location=tuple(entry["location"]),
                capacity=entry["capacity"],
                view_probability=entry["view_probability"],
                arrival_time=entry["arrival_time"],
            )
            for entry in document["customers"]
        ]
        vendors = [
            Vendor(
                vendor_id=entry["id"],
                location=tuple(entry["location"]),
                radius=entry["radius"],
                budget=entry["budget"],
            )
            for entry in document["vendors"]
        ]
        ad_types = [
            AdType(
                type_id=entry["id"],
                name=entry["name"],
                cost=entry["cost"],
                effectiveness=entry["effectiveness"],
            )
            for entry in document["ad_types"]
        ]
        utility = document["utility"]
        if utility["kind"] != "tabular":
            raise DataFormatError(
                f"unsupported utility kind {utility['kind']!r}"
            )
        model = TabularUtilityModel(
            preferences={
                (i, j): value for i, j, value in utility["preferences"]
            },
            distances=(
                {(i, j): value for i, j, value in utility["distances"]}
                if utility["distances"] is not None
                else None
            ),
            default_preference=utility["default_preference"],
        )
        validator = None
        if document.get("valid_pairs") is not None:
            valid_pairs = {(i, j) for i, j in document["valid_pairs"]}
            validator = lambda c, v: (  # noqa: E731
                (c.customer_id, v.vendor_id) in valid_pairs
            )
        return MUAAProblem(
            customers=customers,
            vendors=vendors,
            ad_types=ad_types,
            utility_model=model,
            pair_validator=validator,
        )
    except (KeyError, TypeError) as exc:
        raise DataFormatError(f"malformed problem document: {exc}") from exc


def save_problem(problem: MUAAProblem, path: Union[str, Path]) -> None:
    """Serialise to a JSON file (tabular instances only; freeze first)."""
    Path(path).write_text(
        json.dumps(problem_to_dict(problem)), encoding="utf-8"
    )


def load_problem(path: Union[str, Path]) -> MUAAProblem:
    """Load an instance saved by :func:`save_problem`.

    Raises:
        DataFormatError: On unreadable or malformed documents.
    """
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise DataFormatError(f"{path}: {exc}") from exc
    return problem_from_dict(document)
