"""The MUAA problem instance (Definition 5).

:class:`MUAAProblem` bundles customers, vendors, the ad-type catalogue
and a utility model, and provides the derived quantities every
algorithm needs: valid-pair range queries (via the spatial grid index),
per-instance utilities and budget efficiencies, and fresh
constraint-tracking assignment sets.

Utility evaluation has two implementations behind one interface: the
scalar :class:`~repro.utility.model.UtilityModel` reference path, and
the columnar :class:`~repro.engine.ComputeEngine` that scores the whole
candidate-edge table in vectorized passes.  Batch entry points
(:meth:`MUAAProblem.warm_utilities`,
:meth:`MUAAProblem.candidate_instances`) build the engine on demand via
:meth:`MUAAProblem.acquire_engine`; point lookups
(:meth:`MUAAProblem.pair_instances`,
:meth:`MUAAProblem.best_instance_for_pair`) use it only once built, so
purely online access patterns keep their scalar latency profile.
"""

from __future__ import annotations

from dataclasses import replace as _entity_replace
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.churn import KIND_DEACTIVATE, KIND_INSERT, KIND_RETIRE, ChurnEvent, ChurnState
from repro.core.assignment import AdInstance, Assignment
from repro.core.entities import AdType, Customer, Vendor, distance
from repro.exceptions import InvalidProblemError
from repro.spatial.grid_index import GridIndex
from repro.spatial.queries import (
    build_customer_index,
    build_vendor_index,
    valid_customers,
    valid_vendors,
)
from repro.utility.model import UtilityModel


class MUAAProblem:
    """A maximum-utility ad assignment instance.

    Args:
        customers: The spatial customers :math:`U_\\varphi`.
        vendors: The spatial vendors :math:`V_\\varphi`.
        ad_types: The ad-type catalogue :math:`T`.
        utility_model: Evaluator for Eq. 4 utilities.
        pair_validator: Optional override of the range constraint: a
            predicate on ``(customer, vendor)`` replacing the geometric
            :math:`d(u_i, v_j) \\le r_j` check.  Used when validity is
            given by external data (e.g. the paper's worked example,
            whose distances come from a table rather than coordinates).
            When set, range queries fall back to exhaustive scans, so
            this is intended for small instances.
        spatial_backend: ``"grid"`` (default) or ``"kdtree"`` -- the
            index used for customer-side range queries.  Both are
            exact; the grid is tuned by the max vendor radius, the
            KD-tree is parameter-free (see
            ``benchmarks/bench_spatial_backends.py``).
        use_engine: Allow the columnar compute engine for batch utility
            evaluation when the utility model has a vectorized kernel.
            Disable to force the scalar reference path everywhere
            (parity tests, fault-injection wrappers, baselines).
        parallel: Optional :class:`repro.parallel.ParallelConfig`.
            When set (and ``jobs > 1``), the compute engine scores
            large candidate-edge tables in chunked worker processes
            over shared memory; results are bitwise identical to the
            serial pass.  Serial (``None``) is the default.
        churn: Optional shared :class:`~repro.churn.ChurnState`.  Shard
            views pass their parent's state so a vendor deactivated
            anywhere (budget exhaustion is a global fact) is skipped by
            every view's candidate scans; omitted, the problem gets a
            private state.
        slot_map: Optional :class:`~repro.scenario.slots.SlotMap` when
            the vendor catalogue is slot-expanded (each base vendor
            split into per-slot vendors; see ``docs/scenarios.md``).
            Purely descriptive bookkeeping -- slot-vendors are ordinary
            vendors to every kernel and solver.
        dtype: Column-width policy for the compute engine -- ``None``
            or ``"float64"`` for the bitwise parity reference,
            ``"float32"`` for half-width columns (see
            ``docs/scale.md``), or a
            :class:`~repro.engine.dtypes.DtypePolicy`.

    Raises:
        InvalidProblemError: On duplicate ids, an empty catalogue, or
            an unknown spatial backend.
    """

    def __init__(
        self,
        customers: Sequence[Customer],
        vendors: Sequence[Vendor],
        ad_types: Sequence[AdType],
        utility_model: UtilityModel,
        pair_validator: Optional[
            Callable[[Customer, Vendor], bool]
        ] = None,
        spatial_backend: str = "grid",
        use_engine: bool = True,
        parallel=None,
        churn: Optional[ChurnState] = None,
        dtype=None,
        slot_map=None,
    ) -> None:
        if spatial_backend not in ("grid", "kdtree"):
            raise InvalidProblemError(
                f"unknown spatial backend {spatial_backend!r}"
            )
        if not ad_types:
            raise InvalidProblemError("a MUAA problem needs at least one ad type")
        self.customers: List[Customer] = list(customers)
        self.vendors: List[Vendor] = list(vendors)
        self.ad_types: List[AdType] = list(ad_types)
        self.utility_model = utility_model

        self.customers_by_id: Dict[int, Customer] = {
            c.customer_id: c for c in self.customers
        }
        self.vendors_by_id: Dict[int, Vendor] = {
            v.vendor_id: v for v in self.vendors
        }
        self.ad_types_by_id: Dict[int, AdType] = {
            t.type_id: t for t in self.ad_types
        }
        if len(self.customers_by_id) != len(self.customers):
            raise InvalidProblemError("duplicate customer ids")
        if len(self.vendors_by_id) != len(self.vendors):
            raise InvalidProblemError("duplicate vendor ids")
        if len(self.ad_types_by_id) != len(self.ad_types):
            raise InvalidProblemError("duplicate ad type ids")

        # Deferred import: validation.py imports this module for the
        # assignment checker, so the entity gate is bound at call time.
        from repro.core.validation import validate_problem_entities

        validate_problem_entities(self.customers, self.vendors)

        self.capacities: Dict[int, int] = {
            c.customer_id: c.capacity for c in self.customers
        }
        self.budgets: Dict[int, float] = {
            v.vendor_id: v.budget for v in self.vendors
        }
        self.max_radius: float = max((v.radius for v in self.vendors), default=0.0)
        #: Cheapest ad price; a vendor below this cannot afford any ad.
        self.min_cost: float = min(t.cost for t in self.ad_types)

        self._pair_validator = pair_validator
        self._spatial_backend = spatial_backend
        self._customer_index = None
        self._vendor_index: Optional[GridIndex] = None
        self._use_engine = use_engine
        self._engine = None
        self._engine_miss = None
        self._engine_unsupported = False
        #: Fan-out configuration consulted by the compute engine for
        #: chunked kernel scoring (``None`` means strictly serial).
        self.parallel_config = parallel
        #: Churn bookkeeping (deactivated vendors, skip/epoch counters),
        #: shared with shard views of this problem.
        self.churn: ChurnState = churn if churn is not None else ChurnState()
        #: Slot-expansion bookkeeping (``None`` for single-slot problems).
        self.slot_map = slot_map
        #: Customers whose location changed after construction.  Their
        #: precomputed engine rows are stale, so point lookups fall back
        #: to the scalar spatial path for exactly these ids; empty (the
        #: static default) keeps every lookup on its original path.
        self._moved: Set[int] = set()
        #: First-seen locations of moved customers, for
        #: :meth:`reset_moves` (run-local trajectory rollback).
        self._original_locations: Dict[int, Tuple[float, float]] = {}
        #: Bumped once per applied customer move.  Streaming layers
        #: re-resolve a customer's candidate range when this advances
        #: (the trajectory-scenario analogue of the churn epoch).
        self.location_epoch: int = 0
        # Deferred import keeps repro.core free of a hard engine import
        # at module load; the policy is a tiny frozen descriptor.
        from repro.engine.dtypes import resolve_policy

        #: Column-width policy the compute engine builds with
        #: (``docs/scale.md``); ``float64`` is the parity reference.
        self.dtype_policy = resolve_policy(dtype)

    # ------------------------------------------------------------------
    # Columnar compute engine
    # ------------------------------------------------------------------
    @property
    def engine(self):
        """The built :class:`~repro.engine.ComputeEngine`, or ``None``.

        Point lookups consult this without triggering a build, so the
        engine only pays off after a batch entry point (or an explicit
        :meth:`acquire_engine`) has constructed it.
        """
        return self._engine

    def acquire_engine(self):
        """Build (once) and return the compute engine, or ``None``.

        Returns ``None`` when the engine is disabled for this problem
        or the utility model has no vectorized kernel; callers fall
        back to the scalar reference path.
        """
        if (
            self._engine is None
            and self._use_engine
            and not self._engine_unsupported
        ):
            from repro.engine import ComputeEngine
            from repro.engine.engine import MISS
            from repro.store.cache import active_cache

            cache = active_cache()
            engine = cache.fetch(self) if cache is not None else None
            if engine is None:
                engine = ComputeEngine.create(self)
                if engine is not None and cache is not None:
                    cache.store(self, engine)
            if engine is None:
                self._engine_unsupported = True
            else:
                self._engine = engine
                self._engine_miss = MISS
        return self._engine

    def adopt_engine(self, engine) -> None:
        """Install a pre-built compute engine for this problem.

        Shard worker processes reconstruct their engine from columns
        shipped over shared memory
        (:meth:`repro.engine.ComputeEngine.from_prescored`) instead of
        re-scoring locally; this hands the result to the problem so
        every point lookup rides it.  The engine must have been built
        against this problem's entities.
        """
        from repro.engine.engine import MISS

        self._engine = engine
        self._engine_miss = MISS
        self._engine_unsupported = False

    def drop_engine(self) -> None:
        """Discard the built compute engine (if any).

        The next batch entry point rebuilds from scratch -- the cold
        path churn's incremental splices are parity-tested against.
        """
        self._engine = None
        self._engine_miss = None
        self._engine_unsupported = False

    def _engine_base(
        self, customer_id: int, vendor_id: int
    ) -> Optional[float]:
        """The pair base from the built engine, or ``None`` (engine not
        built, the customer has moved since the table was scored, or
        the pair is not a range-valid candidate)."""
        if self._engine is None or customer_id in self._moved:
            return None
        return self._engine.pair_base(customer_id, vendor_id)

    # ------------------------------------------------------------------
    # Spatial queries (constraint 1 of Definition 5)
    # ------------------------------------------------------------------
    @property
    def pair_validator(self):
        """The custom pair validator, or ``None`` for the range check."""
        return self._pair_validator

    @property
    def spatial_backend(self) -> str:
        """The configured spatial index backend (``grid``/``kdtree``)."""
        return self._spatial_backend

    @property
    def customer_index(self):
        """Spatial index over customer locations (built lazily)."""
        if self._customer_index is None:
            if self._spatial_backend == "kdtree":
                from repro.spatial.kdtree import KDTree

                self._customer_index = KDTree(
                    [(c.customer_id, c.location) for c in self.customers]
                )
            else:
                cell = self.max_radius if self.max_radius > 0 else 1.0
                self._customer_index = build_customer_index(
                    self.customers, cell
                )
        return self._customer_index

    def grid_cell_size(self) -> float:
        """Cell size the grid customer index uses (or would use).

        Matches :attr:`customer_index` exactly -- including the
        degenerate-radius floor -- but without building the index, so
        the vectorized edge enumeration can size its grid for a
        million customers without a per-point insertion pass.
        """
        if self._customer_index is not None and hasattr(
            self._customer_index, "cell_size"
        ):
            return self._customer_index.cell_size
        cell = self.max_radius if self.max_radius > 0 else 1.0
        return max(cell, 1e-6)

    @property
    def vendor_index(self) -> GridIndex:
        """Grid index over vendor locations (built lazily)."""
        if self._vendor_index is None:
            self._vendor_index = build_vendor_index(self.vendors)
        return self._vendor_index

    def valid_customer_ids(self, vendor: Vendor) -> List[int]:
        """Customers inside ``vendor``'s advertising radius."""
        if self._pair_validator is not None:
            return [
                c.customer_id for c in self.customers
                if self._pair_validator(c, vendor)
            ]
        return valid_customers(vendor, self.customer_index)

    def valid_vendor_ids(self, customer: Customer) -> List[int]:
        """Vendors whose advertising area contains ``customer``.

        With a built compute engine this reads the precomputed
        candidate-edge adjacency (same set as the spatial query, in
        vendor catalogue order) instead of re-running the range query
        per call.  Vendors deactivated in the shared
        :class:`~repro.churn.ChurnState` (exhausted budgets, explicit
        ``deactivate`` events) are filtered out, and each skip is
        counted in ``churn.skips``.
        """
        if (
            self._engine is not None
            and self._engine.edges_built
            and customer.customer_id not in self._moved
        ):
            vendors = self._engine.vendors_in_range(customer.customer_id)
            if vendors is not None:
                return self._filter_inactive(list(vendors))
        if self._pair_validator is not None:
            return self._filter_inactive([
                v.vendor_id for v in self.vendors
                if self._pair_validator(customer, v)
            ])
        return self._filter_inactive(valid_vendors(
            customer, self.vendors_by_id, self.vendor_index, self.max_radius
        ))

    def _filter_inactive(self, vendor_ids: List[int]) -> List[int]:
        """Drop deactivated vendors from a candidate scan, counting the
        skips (surfaced in ``ResilienceStats`` and obs)."""
        inactive = self.churn.inactive
        if not inactive:
            return vendor_ids
        active = [vid for vid in vendor_ids if vid not in inactive]
        skipped = len(vendor_ids) - len(active)
        if skipped:
            self.churn.skips += skipped
        return active

    def is_valid_pair(self, customer: Customer, vendor: Vendor) -> bool:
        """Range check :math:`d(u_i, v_j) \\le r_j` (or the custom
        validator when one was supplied)."""
        if self._pair_validator is not None:
            return self._pair_validator(customer, vendor)
        return distance(customer, vendor) <= vendor.radius

    # ------------------------------------------------------------------
    # Utilities and candidate enumeration
    # ------------------------------------------------------------------
    def utility(self, customer_id: int, vendor_id: int, type_id: int) -> float:
        """Utility :math:`\\lambda_{ijk}` by entity ids."""
        base = self._engine_base(customer_id, vendor_id)
        if base is not None:
            return base * self.ad_types_by_id[type_id].effectiveness
        return self.utility_model.utility(
            self.customers_by_id[customer_id],
            self.vendors_by_id[vendor_id],
            self.ad_types_by_id[type_id],
        )

    def efficiency(self, customer_id: int, vendor_id: int, type_id: int) -> float:
        """Budget efficiency :math:`\\gamma_{ijk}` by entity ids."""
        ad_type = self.ad_types_by_id[type_id]
        return self.utility(customer_id, vendor_id, type_id) / ad_type.cost

    def make_instance(
        self, customer_id: int, vendor_id: int, type_id: int
    ) -> AdInstance:
        """Build an :class:`AdInstance` with its evaluated utility/cost."""
        ad_type = self.ad_types_by_id[type_id]
        return AdInstance(
            customer_id=customer_id,
            vendor_id=vendor_id,
            type_id=type_id,
            utility=self.utility(customer_id, vendor_id, type_id),
            cost=ad_type.cost,
        )

    def pair_instances(self, customer_id: int, vendor_id: int) -> List[AdInstance]:
        """All ad-type choices for one valid pair, utility pre-evaluated."""
        base = self._engine_base(customer_id, vendor_id)
        if base is not None:
            return self._engine.pair_instances(customer_id, vendor_id, base)
        customer = self.customers_by_id[customer_id]
        vendor = self.vendors_by_id[vendor_id]
        if self.utility_model.type_sensitive:
            return [
                AdInstance(
                    customer_id=customer_id,
                    vendor_id=vendor_id,
                    type_id=t.type_id,
                    utility=self.utility_model.utility(customer, vendor, t),
                    cost=t.cost,
                )
                for t in self.ad_types
            ]
        base = self.utility_model.pair_base(customer, vendor)
        return [
            AdInstance(
                customer_id=customer_id,
                vendor_id=vendor_id,
                type_id=t.type_id,
                utility=base * t.effectiveness,
                cost=t.cost,
            )
            for t in self.ad_types
        ]

    def best_instance_for_pair(
        self,
        customer_id: int,
        vendor_id: int,
        by: str = "efficiency",
        max_cost: Optional[float] = None,
    ) -> Optional[AdInstance]:
        """The "best" ad type for a pair (line 4 of Algorithm 2).

        Args:
            customer_id: The customer.
            vendor_id: The vendor.
            by: ``"efficiency"`` ranks by :math:`\\gamma_{ijk}` (the
                O-AFA criterion); ``"utility"`` ranks by
                :math:`\\lambda_{ijk}`.
            max_cost: When given, only ad types affordable within this
                remaining budget are considered.

        Returns:
            The best instance, or ``None`` when no type is affordable.
        """
        if self._engine is not None and customer_id not in self._moved:
            hit = self._engine.best_for_pair(
                customer_id, vendor_id, by=by, max_cost=max_cost
            )
            if hit is not self._engine_miss:
                return hit
        choices = self.pair_instances(customer_id, vendor_id)
        if max_cost is not None:
            choices = [c for c in choices if c.cost <= max_cost + 1e-9]
        if not choices:
            return None
        if by == "efficiency":
            return max(choices, key=lambda inst: inst.efficiency)
        if by == "utility":
            return max(choices, key=lambda inst: inst.utility)
        raise ValueError(f"unknown ranking criterion {by!r}")

    def candidate_instances(self) -> Iterator[AdInstance]:
        """Every valid ad instance :math:`\\langle u_i, v_j, \\tau_k \\rangle`.

        Enumerates range-valid pairs through the vendor-side index, so
        the cost is proportional to the number of valid pairs rather
        than :math:`m \\cdot n`.  A batch entry point: builds the
        compute engine when the utility model supports it, scoring the
        whole candidate-edge table in vectorized passes.
        """
        engine = self.acquire_engine()
        if engine is not None:
            bases = engine.pair_bases
            arrays = engine.arrays
            for pos, (customer_id, vendor_id) in enumerate(
                engine.edges.iter_pairs(arrays)
            ):
                yield from engine.pair_instances(
                    customer_id, vendor_id, float(bases[pos])
                )
            return
        for vendor in self.vendors:
            for customer_id in self.valid_customer_ids(vendor):
                yield from self.pair_instances(customer_id, vendor.vendor_id)

    def valid_pairs(self) -> Iterator[Tuple[int, int]]:
        """Every range-valid ``(customer_id, vendor_id)`` pair.

        Reuses the engine's edge table when one has already been built
        (the table enumerates pairs in exactly this vendor-major order);
        otherwise runs the range queries directly.
        """
        engine = self._engine
        if engine is not None and engine.edges_built:
            yield from engine.edges.iter_pairs(engine.arrays)
            return
        for vendor in self.vendors:
            for customer_id in self.valid_customer_ids(vendor):
                yield (customer_id, vendor.vendor_id)

    def warm_utilities(self) -> int:
        """Evaluate (and cache) the pair base of every valid pair.

        Utility evaluation (Eqs. 4-5) is shared preprocessing for all
        algorithms; warming it up front makes algorithm timings compare
        assignment work rather than who touched a pair first.  A batch
        entry point: with a vectorized utility model this builds the
        compute engine and scores every candidate edge in one pass per
        time bucket.

        Returns:
            The number of valid pairs evaluated.
        """
        engine = self.acquire_engine()
        if engine is not None:
            return engine.warm()
        count = 0
        for customer_id, vendor_id in self.valid_pairs():
            self.utility_model.pair_base(
                self.customers_by_id[customer_id],
                self.vendors_by_id[vendor_id],
            )
            count += 1
        return count

    # ------------------------------------------------------------------
    # Assignments
    # ------------------------------------------------------------------
    def new_assignment(self) -> Assignment:
        """A fresh assignment tracking this problem's capacities/budgets."""
        return Assignment(capacities=self.capacities, budgets=self.budgets)

    # ------------------------------------------------------------------
    # Churn (live vendor joins/leaves; see docs/incremental.md)
    # ------------------------------------------------------------------
    def insert_vendor(
        self, vendor: Vendor, position: Optional[int] = None
    ) -> bool:
        """Add a joining vendor at catalogue ``position`` (default:
        end), threading the delta into a built compute engine.

        The customer spatial index is left untouched (its cell size is
        frozen at construction; range queries stay exact for any
        radius), so a cold engine rebuild on this same problem object
        reproduces the delta result bit for bit.  Idempotent.
        """
        if vendor.vendor_id in self.vendors_by_id:
            return False
        if position is None:
            position = len(self.vendors)
        self.vendors.insert(position, vendor)
        self.vendors_by_id[vendor.vendor_id] = vendor
        # ``budgets`` is shared by reference with live assignments, so
        # the join is immediately spendable mid-episode.
        self.budgets[vendor.vendor_id] = vendor.budget
        self.max_radius = max(self.max_radius, vendor.radius)
        self._vendor_index = None
        if self._engine is not None:
            self._engine.insert_vendor(vendor, row=position)
        return True

    def retire_vendor(self, vendor_id: int) -> bool:
        """Remove a leaving vendor from the catalogue and a built
        engine.  The ``budgets`` entry is kept -- live assignments still
        account spend against it.  Idempotent."""
        vendor = self.vendors_by_id.pop(vendor_id, None)
        if vendor is None:
            return False
        self.vendors.remove(vendor)
        self.churn.inactive.discard(vendor_id)
        self.churn.auto.discard(vendor_id)
        self._vendor_index = None
        if self._engine is not None:
            self._engine.retire_vendor(vendor_id)
        return True

    def admit_customers(self, customers: Sequence[Customer]) -> int:
        """Add new customers (shard views admit replicas during a cell
        migration).  The spatial index is invalidated for lazy rebuild;
        ``capacities`` is shared by reference with live assignments, so
        the admits are immediately servable.  Idempotent per id."""
        fresh = [
            c for c in customers if c.customer_id not in self.customers_by_id
        ]
        if not fresh:
            return 0
        for customer in fresh:
            self.customers.append(customer)
            self.customers_by_id[customer.customer_id] = customer
            self.capacities[customer.customer_id] = customer.capacity
        self._customer_index = None
        if self._engine is not None:
            self._engine.admit_customers(fresh)
        return len(fresh)

    def move_customer(
        self, customer_id: int, new_location: Tuple[float, float]
    ) -> bool:
        """Relocate a customer mid-episode (trajectory scenarios).

        The frozen entity is replaced, the customer spatial index is
        invalidated for lazy rebuild, and the id joins the moved set so
        every engine-backed lookup for this customer falls back to the
        scalar spatial path -- the precomputed candidate rows were
        scored at the old location and are stale.  Each applied move
        bumps :attr:`location_epoch`, the signal streaming layers use
        to re-resolve the customer's candidate range.  Unknown ids and
        no-op moves return ``False``.
        """
        current = self.customers_by_id.get(customer_id)
        if current is None:
            return False
        location = (float(new_location[0]), float(new_location[1]))
        if location == tuple(current.location):
            return False
        moved = _entity_replace(current, location=location)
        self._original_locations.setdefault(
            customer_id, tuple(current.location)
        )
        for row, customer in enumerate(self.customers):
            if customer.customer_id == customer_id:
                self.customers[row] = moved
                break
        self.customers_by_id[customer_id] = moved
        self._customer_index = None
        self._moved.add(customer_id)
        self.location_epoch += 1
        return True

    @property
    def moved_customer_ids(self) -> frozenset:
        """Ids of customers relocated since construction (read-only)."""
        return frozenset(self._moved)

    def reset_moves(self) -> int:
        """Roll back every customer move, returning how many customers
        were restored.

        The trajectory analogue of :meth:`reset_auto_deactivations`:
        a move schedule is run-local (applied mid-stream against one
        assignment), so the stream restores first-seen locations at the
        end of the run to keep the problem object reusable -- the next
        panel member sees the same workload.  Clearing the moved set
        also puts the restored customers back on the engine path (their
        precomputed rows were scored at exactly these locations).
        """
        count = len(self._original_locations)
        if not count:
            return 0
        for customer_id, location in self._original_locations.items():
            current = self.customers_by_id.get(customer_id)
            if current is None:
                continue
            restored = _entity_replace(current, location=location)
            for row, customer in enumerate(self.customers):
                if customer.customer_id == customer_id:
                    self.customers[row] = restored
                    break
            self.customers_by_id[customer_id] = restored
        self._original_locations.clear()
        self._moved.clear()
        self._customer_index = None
        return count

    def deactivate_vendors(
        self, vendor_ids: Sequence[int], auto: bool = False
    ) -> int:
        """Mark vendors inactive so candidate scans skip them.

        Explicit deactivations (``auto=False``, e.g. a ``deactivate``
        churn event) also splice the vendors' candidate segments out of
        a built engine.  Automatic ones (budget exhaustion detected
        mid-run) stay set-only -- cheap, and rolled back by
        :meth:`reset_auto_deactivations` so the problem object is
        reusable across runs.  Returns the number newly deactivated.
        """
        fresh = [
            vid for vid in vendor_ids
            if vid in self.vendors_by_id and vid not in self.churn.inactive
        ]
        for vid in fresh:
            self.churn.inactive.add(vid)
            if auto:
                self.churn.auto.add(vid)
        self.churn.deactivations += len(fresh)
        if fresh and not auto and self._engine is not None:
            self._engine.deactivate_exhausted(fresh)
        return len(fresh)

    def reactivate_vendors(self, vendor_ids: Sequence[int]) -> int:
        """Undo deactivations (segments are rebuilt bit-identically)."""
        count = 0
        for vid in vendor_ids:
            if vid in self.churn.inactive:
                self.churn.inactive.discard(vid)
                self.churn.auto.discard(vid)
                count += 1
                if self._engine is not None:
                    self._engine.restore_vendor(vid)
        return count

    def note_if_exhausted(self, assignment: Assignment, vendor_id: int) -> bool:
        """Auto-deactivate a vendor whose remaining budget can no
        longer afford the cheapest ad type.

        Called by the stream/broker loops after each commit.  Such a
        vendor always yields ``best=None`` on every later scan, so
        skipping it is provably decision-neutral -- the skip only saves
        the scoring work.  Returns whether the vendor was deactivated.
        """
        if (
            vendor_id in self.churn.inactive
            or vendor_id not in self.vendors_by_id
        ):
            return False
        try:
            remaining = assignment.remaining_budget(vendor_id)
        except KeyError:
            return False
        if remaining + 1e-9 >= self.min_cost:
            return False
        self.churn.inactive.add(vendor_id)
        self.churn.auto.add(vendor_id)
        self.churn.deactivations += 1
        return True

    def reset_auto_deactivations(self) -> int:
        """Roll back every automatic (budget-exhaustion) deactivation,
        returning how many were active.  Run at the end of a stream or
        broker episode so the problem object stays reusable."""
        auto = self.churn.auto
        count = len(auto)
        if count:
            self.churn.inactive.difference_update(auto)
            auto.clear()
        return count

    def apply_churn(self, event: ChurnEvent) -> int:
        """Apply one churn event directly to this (un-sharded) problem
        and bump the epoch.  ``migrate`` events are shard-level --
        route those through ``ShardPlan.apply_churn``."""
        if event.kind == KIND_INSERT:
            self.insert_vendor(event.vendor)
        elif event.kind == KIND_RETIRE:
            self.retire_vendor(event.vendor_id)
        elif event.kind == KIND_DEACTIVATE:
            self.deactivate_vendors([event.vendor_id])
        else:
            raise ValueError(
                f"{event.kind!r} events require a ShardPlan to apply"
            )
        self.churn.epoch += 1
        return self.churn.epoch

    def theta(self) -> float:
        """The bound factor :math:`\\theta = \\min_i a_i / n_i^c` of
        Theorems III.1/IV.1, where :math:`n_i^c` is the larger of the
        number of valid vendors of :math:`u_i` and the capacity
        :math:`a_i`."""
        theta = 1.0
        for customer in self.customers:
            n_valid = len(self.valid_vendor_ids(customer))
            n_c = max(n_valid, customer.capacity)
            if n_c > 0 and customer.capacity > 0:
                theta = min(theta, customer.capacity / n_c)
        return theta
