"""Core MUAA model: entities, assignments, the problem, and validation."""

from repro.core.assignment import AdInstance, Assignment, union_unchecked
from repro.core.entities import AdType, Customer, Vendor, distance
from repro.core.problem import MUAAProblem
from repro.core.reduction import knapsack_brute_force, knapsack_to_muaa
from repro.core.serialize import freeze, load_problem, save_problem
from repro.core.validation import TOLERANCE, ValidationReport, validate_assignment

__all__ = [
    "knapsack_brute_force",
    "knapsack_to_muaa",
    "freeze",
    "load_problem",
    "save_problem",
    "AdInstance",
    "Assignment",
    "union_unchecked",
    "AdType",
    "Customer",
    "Vendor",
    "distance",
    "MUAAProblem",
    "TOLERANCE",
    "ValidationReport",
    "validate_assignment",
]
