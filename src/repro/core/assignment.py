"""Ad assignment instances and constraint-tracking assignment sets.

An :class:`AdInstance` is the triple :math:`\\langle u_i, v_j, \\tau_k
\\rangle` of Definition 4 together with its evaluated utility and cost.
An :class:`Assignment` is the instance set :math:`\\mathbb{I}` of the
MUAA problem; it maintains running per-customer counts, per-vendor spend
and the set of assigned customer-vendor pairs, so feasibility of adding
one more instance is O(1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.exceptions import ConstraintViolationError


@dataclass(frozen=True)
class AdInstance:
    """One assigned ad: vendor ``vendor_id`` sends customer ``customer_id``
    an ad of type ``type_id``.

    Attributes:
        customer_id: The receiving customer :math:`u_i`.
        vendor_id: The advertising vendor :math:`v_j`.
        type_id: The ad type :math:`\\tau_k`.
        utility: Evaluated utility :math:`\\lambda_{ijk}` (Eq. 4).
        cost: Ad price :math:`c_k` charged to the vendor's budget.
    """

    customer_id: int
    vendor_id: int
    type_id: int
    utility: float
    cost: float

    @property
    def efficiency(self) -> float:
        """Budget efficiency :math:`\\gamma_{ijk} = \\lambda_{ijk} / c_k`."""
        return self.utility / self.cost

    @property
    def pair(self) -> Tuple[int, int]:
        """The customer-vendor pair key."""
        return (self.customer_id, self.vendor_id)


class Assignment:
    """A mutable ad assignment instance set with O(1) feasibility checks.

    The class tracks three of the four MUAA constraints incrementally
    (capacity, budget, one-ad-per-pair); the range constraint depends on
    geometry and is enforced by the caller or by
    :func:`repro.core.validation.validate_assignment`.

    Args:
        capacities: Per-customer ad limits :math:`a_i`, keyed by id.
        budgets: Per-vendor budgets :math:`B_j`, keyed by id.
    """

    def __init__(
        self,
        capacities: Optional[Dict[int, int]] = None,
        budgets: Optional[Dict[int, float]] = None,
    ) -> None:
        self._instances: Dict[Tuple[int, int], AdInstance] = {}
        self._capacities = capacities
        self._budgets = budgets
        self._ads_per_customer: Dict[int, int] = {}
        self._spend_per_vendor: Dict[int, float] = {}
        self._total_utility = 0.0

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instances)

    def __iter__(self) -> Iterator[AdInstance]:
        return iter(self._instances.values())

    def __contains__(self, pair: Tuple[int, int]) -> bool:
        return pair in self._instances

    @property
    def total_utility(self) -> float:
        """The overall utility :math:`\\sum \\lambda_{ijk}` of the set."""
        return self._total_utility

    def instances(self) -> List[AdInstance]:
        """All instances as a list (insertion order)."""
        return list(self._instances.values())

    def instance_for_pair(self, customer_id: int, vendor_id: int) -> Optional[AdInstance]:
        """The instance assigned to the pair, or ``None``."""
        return self._instances.get((customer_id, vendor_id))

    def ads_for_customer(self, customer_id: int) -> int:
        """Number of ads currently assigned to a customer."""
        return self._ads_per_customer.get(customer_id, 0)

    def spend_for_vendor(self, vendor_id: int) -> float:
        """Budget already consumed by a vendor's assigned ads."""
        return self._spend_per_vendor.get(vendor_id, 0.0)

    def remaining_budget(self, vendor_id: int) -> float:
        """Vendor budget still available (requires budgets at construction)."""
        if self._budgets is None:
            raise ConstraintViolationError(
                "remaining_budget requires budgets to be supplied"
            )
        return self._budgets[vendor_id] - self.spend_for_vendor(vendor_id)

    def customer_instances(self, customer_id: int) -> List[AdInstance]:
        """All instances addressed to one customer."""
        return [
            inst for inst in self._instances.values()
            if inst.customer_id == customer_id
        ]

    def vendor_instances(self, vendor_id: int) -> List[AdInstance]:
        """All instances funded by one vendor."""
        return [
            inst for inst in self._instances.values()
            if inst.vendor_id == vendor_id
        ]

    # ------------------------------------------------------------------
    # Feasibility and mutation
    # ------------------------------------------------------------------
    def can_add(self, instance: AdInstance) -> bool:
        """Whether adding ``instance`` keeps capacity/budget/pair feasible."""
        if instance.pair in self._instances:
            return False
        if self._capacities is not None:
            cap = self._capacities.get(instance.customer_id, 0)
            if self.ads_for_customer(instance.customer_id) + 1 > cap:
                return False
        if self._budgets is not None:
            budget = self._budgets.get(instance.vendor_id, 0.0)
            spent = self.spend_for_vendor(instance.vendor_id)
            # Tolerance guards float accumulation over many additions.
            if spent + instance.cost > budget + 1e-9:
                return False
        return True

    def add(self, instance: AdInstance, strict: bool = True) -> bool:
        """Add an instance.

        Args:
            instance: The ad instance to add.
            strict: When true, raise :class:`ConstraintViolationError` if
                the instance is infeasible; when false, return ``False``
                instead.

        Returns:
            ``True`` when the instance was added.
        """
        if not self.can_add(instance):
            if strict:
                raise ConstraintViolationError(
                    f"cannot add {instance}: capacity, budget, or pair "
                    "constraint violated"
                )
            return False
        self._instances[instance.pair] = instance
        self._ads_per_customer[instance.customer_id] = (
            self.ads_for_customer(instance.customer_id) + 1
        )
        self._spend_per_vendor[instance.vendor_id] = (
            self.spend_for_vendor(instance.vendor_id) + instance.cost
        )
        self._total_utility += instance.utility
        return True

    def remove(self, customer_id: int, vendor_id: int) -> AdInstance:
        """Remove and return the instance of a pair.

        Raises:
            KeyError: If the pair has no assigned instance.
        """
        instance = self._instances.pop((customer_id, vendor_id))
        self._ads_per_customer[customer_id] -= 1
        self._spend_per_vendor[vendor_id] -= instance.cost
        self._total_utility -= instance.utility
        return instance

    # ------------------------------------------------------------------
    # Set algebra used by RECON and the analysis
    # ------------------------------------------------------------------
    def merge(self, other: "Assignment", strict: bool = False) -> int:
        """Add every instance of ``other`` that remains feasible here.

        Returns:
            The number of instances actually added.
        """
        added = 0
        for instance in other:
            if self.add(instance, strict=strict):
                added += 1
        return added

    def violated_customers(self, capacities: Dict[int, int]) -> Set[int]:
        """Customers holding more ads than their capacity allows.

        Used by RECON after the union of per-vendor solutions, where the
        capacity constraint is deliberately not yet enforced.
        """
        return {
            cid for cid, count in self._ads_per_customer.items()
            if count > capacities.get(cid, 0)
        }


def union_unchecked(parts: List[Assignment]) -> Assignment:
    """Union per-vendor assignments *without* enforcing customer capacity.

    This constructs the intermediate state of Algorithm 1 (RECON) after
    all single-vendor problems are solved: budgets and pair-uniqueness
    hold by construction, but customers may be over capacity.
    """
    merged = Assignment()
    for part in parts:
        for instance in part:
            merged.add(instance, strict=True)
    return merged
