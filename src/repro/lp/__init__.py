"""LP substrate: a from-scratch two-phase simplex and a model builder."""

from repro.lp.model import LinearProgram
from repro.lp.simplex import solve_lp_maximize
from repro.lp.solution import LPSolution

__all__ = ["LinearProgram", "solve_lp_maximize", "LPSolution"]
