"""Solution value object for the LP substrate."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LPSolution:
    """An optimal solution of a linear program.

    Attributes:
        x: Optimal variable values.
        objective: Optimal objective value (in the caller's sense --
            maximisation problems report the maximum).
        iterations: Total simplex pivots across both phases.
    """

    x: np.ndarray
    objective: float
    iterations: int
