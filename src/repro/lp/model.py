"""A small builder for linear programs over named variables.

The single-vendor problem of Section III-A is naturally written with one
variable :math:`x_{iok}` per (customer, ad type) choice; this builder
lets callers construct that LP readably and hands a dense matrix to the
simplex solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Tuple

import numpy as np

from repro.exceptions import InvalidProblemError
from repro.lp.simplex import solve_lp_maximize
from repro.lp.solution import LPSolution


@dataclass(frozen=True)
class _Constraint:
    coefficients: Tuple[Tuple[int, float], ...]
    bound: float
    equality: bool


class LinearProgram:
    """Incrementally built LP: maximise over non-negative named variables.

    Example:
        >>> lp = LinearProgram()
        >>> lp.add_variable("x", objective=3.0)
        0
        >>> lp.add_variable("y", objective=2.0)
        1
        >>> lp.add_constraint({"x": 1.0, "y": 1.0}, bound=4.0)
        >>> solution = lp.solve()
        >>> round(solution.objective, 6)
        12.0
    """

    def __init__(self) -> None:
        self._objective: List[float] = []
        self._names: Dict[Hashable, int] = {}
        self._constraints: List[_Constraint] = []

    def add_variable(self, name: Hashable, objective: float = 0.0) -> int:
        """Register a non-negative variable; returns its column index.

        Raises:
            InvalidProblemError: On duplicate names.
        """
        if name in self._names:
            raise InvalidProblemError(f"duplicate variable {name!r}")
        index = len(self._objective)
        self._names[name] = index
        self._objective.append(objective)
        return index

    def add_constraint(
        self,
        coefficients: Mapping[Hashable, float],
        bound: float,
        equality: bool = False,
    ) -> None:
        """Add ``sum(coef * var) <= bound`` (or ``==`` when requested).

        Raises:
            InvalidProblemError: On unknown variable names.
        """
        resolved = []
        for name, coef in coefficients.items():
            if name not in self._names:
                raise InvalidProblemError(f"unknown variable {name!r}")
            resolved.append((self._names[name], coef))
        self._constraints.append(
            _Constraint(tuple(resolved), bound, equality)
        )

    @property
    def n_variables(self) -> int:
        """Number of registered variables."""
        return len(self._objective)

    def variable_index(self, name: Hashable) -> int:
        """Column index of a variable."""
        return self._names[name]

    def solve(self) -> LPSolution:
        """Solve with the in-tree simplex.

        Raises:
            InvalidProblemError: If no variables were registered.
        """
        n = len(self._objective)
        if n == 0:
            raise InvalidProblemError("LP has no variables")
        ub_rows, ub_bounds = [], []
        eq_rows, eq_bounds = [], []
        for constraint in self._constraints:
            row = np.zeros(n)
            for index, coef in constraint.coefficients:
                row[index] += coef
            if constraint.equality:
                eq_rows.append(row)
                eq_bounds.append(constraint.bound)
            else:
                ub_rows.append(row)
                ub_bounds.append(constraint.bound)
        a_ub = np.array(ub_rows).reshape(-1, n)
        b_ub = np.array(ub_bounds)
        a_eq = np.array(eq_rows).reshape(-1, n) if eq_rows else None
        b_eq = np.array(eq_bounds) if eq_rows else None
        return solve_lp_maximize(
            np.array(self._objective), a_ub, b_ub, a_eq, b_eq
        )
