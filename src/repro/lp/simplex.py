"""A dense two-phase primal simplex solver.

This is the in-tree replacement for the external LP solver the paper
uses (lpsolve [3]) to solve the LP relaxations of the single-vendor
problems.  It solves

.. math:: \\max c^T x \\quad \\text{s.t.} \\quad A x \\le b,\\; x \\ge 0

with :math:`b \\ge 0` handled directly by slack variables and general
:math:`b` via a phase-1 artificial-variable pass.  Bland's rule is used
throughout, which guarantees termination (no cycling) at the cost of
speed -- acceptable here because the MCKP relaxations it cross-checks
are small and the production path uses the specialised greedy in
:mod:`repro.mckp.lp_relaxation`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import InfeasibleError, SolverError, UnboundedError
from repro.lp.solution import LPSolution

#: Numerical tolerance for reduced costs and ratio tests.
EPS = 1e-9

#: Hard cap on pivots; generous for the problem sizes in this library.
MAX_ITERATIONS = 100_000


def _pivot(tableau: np.ndarray, basis: np.ndarray, row: int, col: int) -> None:
    """Perform one pivot on the tableau in place."""
    tableau[row] /= tableau[row, col]
    for r in range(tableau.shape[0]):
        if r != row and abs(tableau[r, col]) > EPS:
            tableau[r] -= tableau[r, col] * tableau[row]
    basis[row] = col


def _simplex_core(
    tableau: np.ndarray, basis: np.ndarray, n_vars: int
) -> int:
    """Run Bland's-rule simplex until optimality.

    The tableau's last row holds the (negated) objective; the last
    column holds the right-hand side.

    Returns:
        The number of pivots performed.

    Raises:
        UnboundedError: If an entering column has no positive entry.
        SolverError: If the pivot budget is exhausted.
    """
    iterations = 0
    n_rows = tableau.shape[0] - 1
    while True:
        objective_row = tableau[-1, :n_vars]
        entering = -1
        for j in range(n_vars):  # Bland: smallest eligible index
            if objective_row[j] < -EPS:
                entering = j
                break
        if entering < 0:
            return iterations

        leaving = -1
        best_ratio = np.inf
        for i in range(n_rows):
            coef = tableau[i, entering]
            if coef > EPS:
                ratio = tableau[i, -1] / coef
                # Bland tie-break: smallest basis index among minimal ratios.
                if ratio < best_ratio - EPS or (
                    ratio < best_ratio + EPS
                    and (leaving < 0 or basis[i] < basis[leaving])
                ):
                    best_ratio = ratio
                    leaving = i
        if leaving < 0:
            raise UnboundedError("LP is unbounded")

        _pivot(tableau, basis, leaving, entering)
        iterations += 1
        if iterations > MAX_ITERATIONS:
            raise SolverError("simplex exceeded the pivot budget")


def solve_lp_maximize(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: Optional[np.ndarray] = None,
    b_eq: Optional[np.ndarray] = None,
) -> LPSolution:
    """Maximise ``c @ x`` subject to ``a_ub @ x <= b_ub``,
    ``a_eq @ x == b_eq`` and ``x >= 0``.

    Args:
        c: Objective coefficients, shape ``(n,)``.
        a_ub: Inequality matrix, shape ``(m_ub, n)`` (may have 0 rows).
        b_ub: Inequality right-hand sides, shape ``(m_ub,)``.
        a_eq: Optional equality matrix.
        b_eq: Optional equality right-hand sides.

    Returns:
        The optimal solution.

    Raises:
        InfeasibleError: When no feasible point exists.
        UnboundedError: When the maximum is unbounded.
    """
    c = np.asarray(c, dtype=float)
    a_ub = np.asarray(a_ub, dtype=float).reshape(-1, c.shape[0])
    b_ub = np.asarray(b_ub, dtype=float)
    if a_eq is None:
        a_eq = np.zeros((0, c.shape[0]))
        b_eq = np.zeros(0)
    else:
        a_eq = np.asarray(a_eq, dtype=float).reshape(-1, c.shape[0])
        b_eq = np.asarray(b_eq, dtype=float)

    n = c.shape[0]
    m_ub = a_ub.shape[0]
    m_eq = a_eq.shape[0]
    m = m_ub + m_eq

    # Standard form rows: [A | slack | artificial | rhs], rhs >= 0.
    rows = np.zeros((m, n + m_ub), dtype=float)
    rhs = np.zeros(m, dtype=float)
    rows[:m_ub, :n] = a_ub
    rows[:m_ub, n : n + m_ub] = np.eye(m_ub)
    rhs[:m_ub] = b_ub
    rows[m_ub:, :n] = a_eq
    rhs[m_ub:] = b_eq
    for i in range(m):
        if rhs[i] < 0:
            rows[i] = -rows[i]
            rhs[i] = -rhs[i]

    # Rows whose slack entered with coefficient -1 (flipped <=) and all
    # equality rows need an artificial variable.
    needs_artificial = []
    for i in range(m):
        if i < m_ub and rows[i, n + i] == 1.0:
            continue
        needs_artificial.append(i)
    n_art = len(needs_artificial)
    total_vars = n + m_ub + n_art

    tableau = np.zeros((m + 1, total_vars + 1), dtype=float)
    tableau[:m, : n + m_ub] = rows
    tableau[:m, -1] = rhs
    basis = np.zeros(m, dtype=int)
    for i in range(m):
        if i < m_ub and rows[i, n + i] == 1.0:
            basis[i] = n + i
    for k, i in enumerate(needs_artificial):
        col = n + m_ub + k
        tableau[i, col] = 1.0
        basis[i] = col

    iterations = 0
    if n_art:
        # Phase 1: minimise the sum of artificials.
        tableau[-1, :] = 0.0
        for k in range(n_art):
            tableau[-1, n + m_ub + k] = 1.0
        for i in needs_artificial:
            tableau[-1] -= tableau[i]
        iterations += _simplex_core(tableau, basis, total_vars)
        if tableau[-1, -1] < -1e-7:
            raise InfeasibleError("LP has no feasible solution")
        # Drive any artificial still in the basis out (degenerate rows).
        for i in range(m):
            if basis[i] >= n + m_ub:
                pivot_col = -1
                for j in range(n + m_ub):
                    if abs(tableau[i, j]) > EPS:
                        pivot_col = j
                        break
                if pivot_col >= 0:
                    _pivot(tableau, basis, i, pivot_col)
                    iterations += 1
        # Remove artificial columns.
        tableau = np.delete(
            tableau, [n + m_ub + k for k in range(n_art)], axis=1
        )
        total_vars = n + m_ub

    # Phase 2: maximise c^T x (tableau minimises, so negate).
    tableau[-1, :] = 0.0
    tableau[-1, :n] = -c
    for i in range(m):
        if basis[i] < total_vars and abs(tableau[-1, basis[i]]) > EPS:
            tableau[-1] -= tableau[-1, basis[i]] * tableau[i]
    iterations += _simplex_core(tableau, basis, total_vars)

    x = np.zeros(n)
    for i in range(m):
        if basis[i] < n:
            x[basis[i]] = tableau[i, -1]
    return LPSolution(x=x, objective=float(c @ x), iterations=iterations)
