"""Zero-copy column shipping via ``multiprocessing.shared_memory``.

The fan-out layer never pickles a problem instance per task.  Instead
the parent packs the NumPy columns workers need (``ProblemArrays``
columns, ``CandidateEdges`` columns, utility matrices) into **one**
shared-memory block and passes workers a tiny picklable
:class:`ColumnHandle` -- block name plus per-column dtype/shape/offset
specs.  Workers attach and rebuild read-only array *views* over the
same physical pages: no copy, no serialization, O(1) per worker.

Lifecycle (the part that bites if you get it wrong):

1. parent: ``shipment = ship_columns({...})`` -- creates + copies once;
2. parent: passes ``shipment.handle`` through the pool initializer;
3. worker: ``columns = attach_columns(handle)`` -- maps read-only views
   over the same pages (workers share the parent's resource tracker, so
   CPython's register-on-attach is an idempotent no-op -- gh-82300);
4. parent: ``shipment.close()`` after the pool has drained -- closes
   its mapping and unlinks the block.  ``ship_columns`` is also a
   context manager, which is the recommended form.

Platforms without ``multiprocessing.shared_memory`` (or without POSIX
shared memory at runtime) are detected via :data:`HAVE_SHARED_MEMORY`;
consumers then stay on the serial path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

try:  # pragma: no cover - import success is the common case
    from multiprocessing import resource_tracker, shared_memory

    HAVE_SHARED_MEMORY = True
except ImportError:  # pragma: no cover - platform without shm
    resource_tracker = None  # type: ignore[assignment]
    shared_memory = None  # type: ignore[assignment]
    HAVE_SHARED_MEMORY = False

#: Byte alignment of each column inside the block (cache-line friendly,
#: and satisfies any dtype's alignment requirement).
_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


@dataclass(frozen=True)
class ColumnSpec:
    """Where one column lives inside the shared block."""

    key: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class ColumnHandle:
    """The picklable description of a shipped column set.

    Workers rebuild the arrays from this alone; ``None``-valued columns
    (e.g. a tabular model's missing interest matrix) are recorded in
    ``none_keys`` so the worker-side mapping is faithful.
    """

    shm_name: str
    specs: Tuple[ColumnSpec, ...]
    none_keys: Tuple[str, ...] = ()


class ColumnShipment:
    """Parent-side owner of one shared-memory block (context manager)."""

    def __init__(self, shm, handle: ColumnHandle) -> None:
        self._shm = shm
        self.handle = handle
        self._closed = False

    def close(self) -> None:
        """Close the parent mapping and unlink the block (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        finally:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "ColumnShipment":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def ship_columns(
    columns: Mapping[str, Optional[np.ndarray]]
) -> ColumnShipment:
    """Pack named arrays into one shared-memory block.

    Args:
        columns: ``key -> array`` (C-contiguous copies are taken as
            needed).  ``None`` values are allowed and recorded as
            absent columns.

    Raises:
        RuntimeError: When the platform has no shared memory; callers
            should check :data:`HAVE_SHARED_MEMORY` first (the
            consumers in this package do, and fall back to serial).
    """
    if not HAVE_SHARED_MEMORY:  # pragma: no cover - platform without shm
        raise RuntimeError("multiprocessing.shared_memory is unavailable")

    none_keys = tuple(k for k, v in columns.items() if v is None)
    present = {
        k: np.ascontiguousarray(v)
        for k, v in columns.items()
        if v is not None
    }

    specs = []
    offset = 0
    for key, arr in present.items():
        offset = _aligned(offset)
        specs.append(
            ColumnSpec(
                key=key,
                dtype=arr.dtype.str,
                shape=tuple(arr.shape),
                offset=offset,
            )
        )
        offset += arr.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(1, offset))
    for spec in specs:
        arr = present[spec.key]
        view = np.ndarray(
            spec.shape, dtype=spec.dtype, buffer=shm.buf, offset=spec.offset
        )
        view[...] = arr
    handle = ColumnHandle(
        shm_name=shm.name, specs=tuple(specs), none_keys=none_keys
    )
    return ColumnShipment(shm, handle)


class AttachedColumns:
    """Worker-side view set over a shipped block.

    Behaves like a read-only mapping ``key -> ndarray`` (or ``None``
    for absent columns).  Keeps the :class:`SharedMemory` attachment
    alive for as long as the views are in use; ``close()`` when done
    (worker exit closes it implicitly).
    """

    def __init__(self, shm, arrays: Dict[str, Optional[np.ndarray]]) -> None:
        self._shm = shm
        self._arrays = arrays

    def __getitem__(self, key: str) -> Optional[np.ndarray]:
        return self._arrays[key]

    def get(self, key: str, default=None):
        return self._arrays.get(key, default)

    def keys(self):
        return self._arrays.keys()

    def close(self) -> None:
        self._arrays = {}
        self._shm.close()


def attach_columns(handle: ColumnHandle) -> AttachedColumns:
    """Attach to a shipped block and rebuild read-only array views."""
    if not HAVE_SHARED_MEMORY:  # pragma: no cover - platform without shm
        raise RuntimeError("multiprocessing.shared_memory is unavailable")
    shm = shared_memory.SharedMemory(name=handle.shm_name, create=False)
    # CPython registers shared memory with the resource tracker on
    # *attach* as well as create (gh-82300).  Pool workers are children
    # of the shipping parent and share its tracker process, so the
    # extra registration is an idempotent set-add; the parent's unlink
    # clears the single entry.  Do NOT unregister here -- that would
    # steal the parent's registration through the shared tracker.
    arrays: Dict[str, Optional[np.ndarray]] = {k: None for k in handle.none_keys}
    for spec in handle.specs:
        view = np.ndarray(
            spec.shape, dtype=spec.dtype, buffer=shm.buf, offset=spec.offset
        )
        view.flags.writeable = False
        arrays[spec.key] = view
    return AttachedColumns(shm, arrays)
