"""Worker-side code for RECON's parallel per-vendor MCKP solves.

The parent (:class:`repro.algorithms.recon.Reconciliation`) ships the
engine's pre-scored state -- the ``(E, K)`` utility matrix, the
vendor-major edge table offsets, customer ids, budgets and the ad-type
catalogue columns -- through one shared-memory block.  Each worker task
is a contiguous ``[lo, hi)`` range of vendor rows; the worker rebuilds
each vendor's MCKP instance from its edge slice (in exactly the serial
enumeration order, so tie-breaking matches) and solves it with the
configured backend.

Workers return plain ``(vendor_row, [(customer_id, type_id), ...])``
tuples; the parent re-materialises :class:`AdInstance` objects through
``problem.make_instance`` so utilities come from the same engine floats
on both paths.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.mckp.items import MCKPInstance, MCKPItem
from repro.mckp.solvers import solve as solve_mckp
from repro.obs.recorder import recorder
from repro.parallel.shm import AttachedColumns, ColumnHandle, attach_columns

#: Cost-affordability tolerance; must match ``repro.algorithms.recon``.
_EPS = 1e-9

#: Per-process worker state: (attached columns, mckp method).
_STATE: Optional[Tuple[AttachedColumns, str]] = None

#: The chosen type ids of one vendor, in solver choice order.
VendorChoice = List[Tuple[int, int]]


def init_worker(handle: ColumnHandle, mckp_method: str) -> None:
    """Pool initializer: attach the shared columns once per worker."""
    global _STATE
    _STATE = (attach_columns(handle), mckp_method)


def solve_vendor_span(span: Tuple[int, int]) -> List[Tuple[int, VendorChoice]]:
    """Solve the single-vendor MCKPs of vendor rows ``[lo, hi)``."""
    assert _STATE is not None, "worker initializer did not run"
    columns, method = _STATE
    utilities = columns["utilities"]
    edge_customer = columns["edge_customer"]
    starts = columns["vendor_starts"]
    customer_ids = columns["customer_ids"]
    budgets = columns["budget"]
    type_cost = columns["type_cost"].tolist()
    type_ids = columns["type_ids"].tolist()

    lo, hi = span
    rec = recorder()
    results: List[Tuple[int, VendorChoice]] = []
    for vendor_row in range(lo, hi):
        with rec.span("recon.vendor", vendor_row=vendor_row):
            budget = float(budgets[vendor_row])
            span_lo = int(starts[vendor_row])
            span_hi = int(starts[vendor_row + 1])
            util = utilities[span_lo:span_hi]
            customer_rows = edge_customer[span_lo:span_hi].tolist()
            items: List[MCKPItem] = []
            # Same nesting and filters as the serial engine path in
            # ``Reconciliation._solve_single_vendor``: customers in edge
            # order, ad types in catalogue order.
            for local, cu in enumerate(customer_rows):
                customer_id = int(customer_ids[cu])
                for k, cost in enumerate(type_cost):
                    utility = float(util[local, k])
                    if utility > 0 and cost <= budget + _EPS:
                        items.append(
                            MCKPItem(
                                class_id=customer_id,
                                item_id=int(type_ids[k]),
                                cost=cost,
                                profit=utility,
                            )
                        )
            if not items:
                results.append((vendor_row, []))
                continue
            mckp = MCKPInstance.from_items(items, budget=budget)
            solution = solve_mckp(mckp, method=method)
            results.append(
                (
                    vendor_row,
                    [
                        (int(customer_id), int(item.item_id))
                        for customer_id, item in solution.chosen.items()
                    ],
                )
            )
    return results
