"""Configuration for the shared-memory process fan-out layer.

A single :class:`ParallelConfig` value is threaded through every
consumer of :mod:`repro.parallel` -- RECON's per-vendor MCKP solves,
the experiment sweeps, and the engine's chunked kernels -- so one knob
(``jobs``) controls the whole stack.  The default is strictly serial:
``ParallelConfig()`` (or ``jobs=1``) reproduces the pre-parallel code
paths instruction for instruction.

Determinism is part of the contract, not an option: every consumer
merges worker results back in task order, and any randomness is derived
from ``(seed, task index)`` via :func:`seed_for` -- never from pool
scheduling -- so serial and parallel runs produce identical output.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

#: Ceiling applied when ``jobs <= 0`` requests "all cores".
_MAX_AUTO_JOBS = 32


def available_cpus() -> int:
    """CPUs usable by this process (affinity-aware when possible)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def seed_for(base_seed: Optional[int], index: int) -> int:
    """A per-task seed derived from ``(base_seed, index)`` only.

    Spawn-safe: the value is a pure function of its arguments (via
    :class:`numpy.random.SeedSequence`), so it is identical no matter
    which worker runs the task, in which order, or under which start
    method.  ``base_seed=None`` maps to a fixed sentinel so the
    derivation stays deterministic.
    """
    base = 0x5EED if base_seed is None else int(base_seed)
    return int(np.random.SeedSequence((base, int(index))).generate_state(1)[0])


@dataclass(frozen=True)
class ParallelConfig:
    """How (and whether) to fan work out across worker processes.

    Attributes:
        jobs: Worker process count.  ``1`` (default) means strictly
            serial -- no pool, no shared memory, byte-identical to the
            pre-parallel code.  ``0`` or negative means "all available
            CPUs" (capped at 32).
        chunk_size: Tasks per dispatched chunk.  ``None`` picks
            ``ceil(n_tasks / (jobs * 4))`` so the pool stays load-
            balanced without drowning in IPC.
        start_method: ``"fork"`` / ``"spawn"`` / ``"forkserver"``, or
            ``None`` to prefer ``fork`` where available (fork inherits
            problem state and closures for free; spawn requires
            everything shipped to workers to be picklable).
        fallback_serial: Degrade to the serial path -- instead of
            raising -- when the platform lacks ``shared_memory``, a
            worker dies, or task state cannot be pickled.
        clamp_jobs: Clamp an explicit ``jobs`` request to the CPUs
            actually available (default).  ``jobs=4`` on a 1-CPU box
            then resolves to ``1`` and the stack runs serial instead of
            paying pool startup and IPC for a measured slowdown.  Tests
            that deliberately oversubscribe to exercise real pool
            machinery set this to ``False``.
        min_tasks: Below this many tasks the pool is never worth its
            startup cost; stay serial.
        min_kernel_edges: Candidate-edge tables smaller than this are
            scored serially even when ``jobs > 1`` (kernel chunking
            only pays off on large tables).
    """

    jobs: int = 1
    chunk_size: Optional[int] = None
    start_method: Optional[str] = None
    fallback_serial: bool = True
    clamp_jobs: bool = True
    min_tasks: int = 2
    min_kernel_edges: int = 8192

    def resolved_jobs(self) -> int:
        """The effective worker count.

        ``jobs<=0`` means all available CPUs (capped at 32).  An
        explicit positive ``jobs`` is clamped to the available CPUs
        unless ``clamp_jobs`` is off -- more workers than cores can
        only lose on CPU-bound solves.
        """
        if self.jobs <= 0:
            return min(available_cpus(), _MAX_AUTO_JOBS)
        if self.clamp_jobs:
            return min(self.jobs, available_cpus())
        return self.jobs

    def active(self, n_tasks: int) -> bool:
        """Whether a pool should be used for ``n_tasks`` tasks."""
        return self.resolved_jobs() > 1 and n_tasks >= self.min_tasks

    def task_chunksize(self, n_tasks: int) -> int:
        """Tasks per dispatch chunk for ``executor.map``."""
        if self.chunk_size is not None:
            return max(1, self.chunk_size)
        return max(1, -(-n_tasks // (self.resolved_jobs() * 4)))

    def spans(self, n_items: int) -> List[Tuple[int, int]]:
        """Contiguous ``[lo, hi)`` item ranges, one per task.

        Ranges are sized so each worker gets a few chunks (for load
        balancing) while chunk count stays proportional to ``jobs``.
        Concatenating per-span results in list order reproduces the
        full-range result exactly.
        """
        if n_items <= 0:
            return []
        jobs = self.resolved_jobs()
        if self.chunk_size is not None:
            size = max(1, self.chunk_size)
        else:
            size = max(1, -(-n_items // (jobs * 4)))
        return [
            (lo, min(lo + size, n_items)) for lo in range(0, n_items, size)
        ]


#: The strictly-serial configuration (module-level singleton for reuse).
SERIAL = ParallelConfig()


def resolve(
    parallel: Optional[ParallelConfig] = None, jobs: Optional[int] = None
) -> ParallelConfig:
    """Normalise the ``parallel=`` / ``jobs=`` dual API of consumers.

    ``parallel`` wins when given; otherwise ``jobs`` builds a default
    config; otherwise the serial singleton is returned.
    """
    if parallel is not None:
        return parallel
    if jobs is not None and jobs != 1:
        return ParallelConfig(jobs=jobs)
    return SERIAL
