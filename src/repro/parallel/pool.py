"""The process fan-out primitive: ordered map with graceful fallback.

:func:`parallel_map` is the one entry point every consumer uses.  It
returns the task results **in task order** (so merges are
deterministic), or ``None`` whenever a pool is not worth having or not
available -- too few tasks, ``jobs=1``, no shared memory, unpicklable
state, or a worker crash with ``fallback_serial`` set.  ``None`` is the
signal to run the serial reference path; consumers never need to know
*why* the pool declined.

Worker functions must be module-level (they are pickled by reference),
and heavy state travels either through the pool initializer (inherited
for free under ``fork``) or through :mod:`repro.parallel.shm` handles.

When the parent process has an enabled :mod:`repro.obs` recorder, the
pool transparently instruments itself: each worker gets its own
recorder (lane ``"worker-<pid>"``), every task ships the spans and
metric increments it produced back alongside its result, and the
parent merges them -- so one ``--trace`` run yields a single timeline
with per-worker lanes.  With the default no-op recorder none of this
machinery engages and the dispatch path is byte-for-byte the
uninstrumented one.
"""

from __future__ import annotations

import functools
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pickle import PicklingError
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.obs.recorder import Recorder, recorder, set_recorder
from repro.parallel.config import ParallelConfig
from repro.parallel.shm import HAVE_SHARED_MEMORY


class WorkerCrashError(RuntimeError):
    """A worker died and the config forbids serial fallback."""


#: Pool-infrastructure failures that trigger the serial fallback.  Task
#: *logic* exceptions are deliberately not in this set -- they re-raise,
#: because the serial path would fail identically.
_POOL_FAILURES = (
    BrokenProcessPool,
    PicklingError,
    AttributeError,  # "Can't pickle local object ..." under spawn
    ImportError,  # worker re-import failure under spawn
    OSError,  # fork/shm resource exhaustion
)


def _context(config: ParallelConfig):
    """The multiprocessing context for ``config`` (prefers fork)."""
    methods = multiprocessing.get_all_start_methods()
    method = config.start_method
    if method is None:
        method = "fork" if "fork" in methods else methods[0]
    elif method not in methods:
        return None
    return multiprocessing.get_context(method)


def _obs_init(initializer: Optional[Callable], initargs: Tuple) -> None:
    """Observability-aware pool initializer.

    Installs a fresh enabled recorder in the worker -- replacing any
    recorder state inherited under ``fork``, which belongs to the
    parent's timeline -- then runs the caller's initializer.  The lane
    is named after the worker pid, so each worker process becomes one
    distinct timeline row in the merged trace.
    """
    set_recorder(Recorder(lane=f"worker-{os.getpid()}"))
    if initializer is not None:
        initializer(*initargs)


def _obs_task(fn: Callable, task):
    """Run one task and ship its recording increment with the result."""
    result = fn(task)
    rec = recorder()
    snapshot = rec.drain() if rec.enabled else None
    return result, snapshot


def pool_available(config: ParallelConfig, n_tasks: int) -> bool:
    """Whether :func:`parallel_map` would even try a pool."""
    return (
        HAVE_SHARED_MEMORY
        and config.active(n_tasks)
        and _context(config) is not None
    )


def parallel_map(
    fn: Callable,
    tasks: Sequence,
    config: ParallelConfig,
    initializer: Optional[Callable] = None,
    initargs: Tuple = (),
) -> Optional[List]:
    """Run ``fn`` over ``tasks`` in a worker pool, results in task order.

    Args:
        fn: Module-level worker function of one task.
        tasks: The task values (must be picklable; keep them tiny --
            indices and ranges -- and ship bulk data via shm/initargs).
        config: The fan-out configuration.
        initializer: Per-worker setup (attach shared memory, stash
            state in module globals).
        initargs: Arguments for ``initializer``.  Under ``fork`` these
            are inherited, not pickled, so closures and problem objects
            are fine; under ``spawn`` they must pickle.

    Returns:
        The ordered result list, or ``None`` when the caller should run
        its serial path instead (pool inactive, platform unsupported,
        or pool infrastructure failed with ``fallback_serial=True``).

    Raises:
        WorkerCrashError: Infrastructure failure with
            ``fallback_serial=False``.
    """
    tasks = list(tasks)
    if not pool_available(config, len(tasks)):
        return None
    ctx = _context(config)
    jobs = min(config.resolved_jobs(), len(tasks))
    rec = recorder()
    if rec.enabled:
        # Route tasks through the observability wrapper: workers get
        # their own lanes, every task returns (result, recording).
        mapped_fn: Callable = functools.partial(_obs_task, fn)
        pool_initializer: Callable = _obs_init
        pool_initargs: Tuple = (initializer, initargs)
    else:
        mapped_fn = fn
        pool_initializer = initializer
        pool_initargs = initargs
    try:
        with ProcessPoolExecutor(
            max_workers=jobs,
            mp_context=ctx,
            initializer=pool_initializer,
            initargs=pool_initargs,
        ) as executor:
            mapped = list(
                executor.map(
                    mapped_fn,
                    tasks,
                    chunksize=config.task_chunksize(len(tasks)),
                )
            )
        if not rec.enabled:
            return mapped
        results = []
        for result, snapshot in mapped:
            if snapshot is not None:
                rec.merge(snapshot)
            results.append(result)
        return results
    except _POOL_FAILURES as exc:
        if config.fallback_serial:
            return None
        raise WorkerCrashError(
            f"worker pool failed ({type(exc).__name__}: {exc}) and "
            f"fallback_serial is disabled"
        ) from exc


def serial_map(fn: Callable, tasks: Iterable) -> List:
    """The serial twin of :func:`parallel_map` (always succeeds)."""
    return [fn(task) for task in tasks]
