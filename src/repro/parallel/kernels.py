"""Chunked (multi-process) scoring of large candidate-edge tables.

:func:`chunked_pair_bases` splits the vendor-major ``CandidateEdges``
table into contiguous row ranges, scores each range in a worker with
the *same* vectorized Eq. 4/5 kernels as the serial engine path, and
concatenates the per-range results in order.  The kernels are
edge-local -- every edge's preference/base is a function of that edge's
customer and vendor columns only -- so the concatenation is bitwise
identical to one full-table pass (pinned by the parity suite).

Entity columns and edge columns travel through one shared-memory block;
the utility model itself rides the pool initializer (inherited under
``fork``, pickled under ``spawn``; unpicklable models simply fall back
to serial scoring).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.engine.arrays import ProblemArrays
from repro.engine.dtypes import FLOAT32, FLOAT64
from repro.engine.edges import CandidateEdges
from repro.engine.kernels import pair_bases as _serial_pair_bases
from repro.obs.recorder import recorder
from repro.parallel.config import ParallelConfig
from repro.parallel.pool import parallel_map
from repro.parallel.shm import (
    HAVE_SHARED_MEMORY,
    AttachedColumns,
    ColumnHandle,
    attach_columns,
    ship_columns,
)

#: Per-process worker state: (attached columns, model, rebuilt arrays).
_STATE = None


def _arrays_for_kernels(columns: AttachedColumns) -> ProblemArrays:
    """A kernel-sufficient ``ProblemArrays`` from shared columns.

    Only the columns the Eq. 4/5 kernels read are shipped; the rest are
    empty placeholders (the dataclass requires every field).  The dtype
    policy is inferred from the shipped float columns so the chunked
    kernels allocate at the same width as the serial pass.
    """
    policy = (
        FLOAT32
        if columns["view_probability"].dtype == np.float32
        else FLOAT64
    )
    empty_f = np.empty(0, dtype=policy.float_dtype)
    customer_ids = columns["customer_ids"]
    vendor_ids = columns["vendor_ids"]
    return ProblemArrays(
        customer_ids=customer_ids,
        customer_xy=np.empty((0, 2), dtype=policy.float_dtype),
        capacity=np.empty(0, dtype=np.int64),
        view_probability=columns["view_probability"],
        arrival_time=columns["arrival_time"],
        interests=columns.get("interests"),
        vendor_ids=vendor_ids,
        vendor_xy=np.empty((0, 2), dtype=policy.float_dtype),
        radius=empty_f,
        budget=empty_f,
        tags=columns.get("tags"),
        type_ids=np.empty(0, dtype=np.int64),
        type_cost=empty_f,
        type_effectiveness=empty_f,
        customer_index={},
        vendor_index={},
        policy=policy,
    )


def _init_kernel_worker(handle: ColumnHandle, model) -> None:
    global _STATE
    columns = attach_columns(handle)
    _STATE = (columns, model, _arrays_for_kernels(columns))


def _score_span(span: Tuple[int, int]) -> np.ndarray:
    """Score edge rows ``[lo, hi)`` with the serial kernel."""
    assert _STATE is not None, "worker initializer did not run"
    columns, model, arrays = _STATE
    lo, hi = span
    with recorder().span("engine.kernel_chunk", lo=lo, hi=hi):
        sub_edges = CandidateEdges(
            customer_idx=columns["edge_customer"][lo:hi],
            vendor_idx=columns["edge_vendor"][lo:hi],
            distance=columns["edge_distance"][lo:hi],
            # vendor_starts is not consulted by the kernels; a trivial
            # placeholder keeps the dataclass honest.
            vendor_starts=np.zeros(1, dtype=np.int64),
        )
        bases = _serial_pair_bases(model, arrays, sub_edges)
    if bases is None:  # pragma: no cover - guarded by the caller
        raise RuntimeError("model lost its vectorized kernel in the worker")
    return bases


def chunked_pair_bases(
    model,
    arrays: ProblemArrays,
    edges: CandidateEdges,
    config: ParallelConfig,
) -> Optional[np.ndarray]:
    """Score the edge table across workers, or ``None`` to stay serial.

    Serial is the answer whenever the pool is inactive, the table is
    below ``config.min_kernel_edges``, the platform lacks shared
    memory, or the pool fails (worker crash, unpicklable model under
    spawn) -- the caller then runs the one-pass serial kernel.
    """
    n_edges = len(edges)
    if (
        not HAVE_SHARED_MEMORY
        or n_edges < config.min_kernel_edges
        or config.resolved_jobs() <= 1
    ):
        return None
    spans = config.spans(n_edges)
    if len(spans) < 2:
        return None

    columns = {
        "customer_ids": arrays.customer_ids,
        "vendor_ids": arrays.vendor_ids,
        "view_probability": arrays.view_probability,
        "arrival_time": arrays.arrival_time,
        "interests": arrays.interests,
        "tags": arrays.tags,
        "edge_customer": np.asarray(edges.customer_idx, dtype=np.int64),
        "edge_vendor": np.asarray(edges.vendor_idx, dtype=np.int64),
        "edge_distance": edges.distance,
    }
    with ship_columns(columns) as shipment:
        parts = parallel_map(
            _score_span,
            spans,
            config,
            initializer=_init_kernel_worker,
            initargs=(shipment.handle, model),
        )
    if parts is None:
        return None
    return np.concatenate(parts)
