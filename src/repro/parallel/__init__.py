"""Shared-memory process fan-out for RECON, sweeps, and engine kernels.

The layer has three pieces:

* :mod:`repro.parallel.config` -- :class:`ParallelConfig`, the one knob
  threaded through every consumer, plus spawn-safe seed derivation;
* :mod:`repro.parallel.shm` -- zero-copy column shipping over
  ``multiprocessing.shared_memory`` (ship once, attach per worker);
* :mod:`repro.parallel.pool` -- :func:`parallel_map`, an ordered
  process-pool map that returns ``None`` whenever the serial path
  should run instead (too few tasks, ``jobs=1``, missing platform
  support, worker crash).

Consumers: ``Reconciliation(jobs=...)`` fans its per-vendor MCKP solves,
``run_sweep(parallel=...)`` / ``run_panel(parallel=...)`` fan sweep
points and panel algorithms, and the compute engine chunks large
candidate tables (:func:`repro.parallel.kernels.chunked_pair_bases`).
Determinism is guaranteed everywhere: parallel and serial runs produce
identical assignments and rows.  See ``docs/parallel.md``.
"""

from repro.parallel.config import (
    SERIAL,
    ParallelConfig,
    available_cpus,
    resolve,
    seed_for,
)
from repro.parallel.pool import (
    WorkerCrashError,
    parallel_map,
    pool_available,
    serial_map,
)
from repro.parallel.shm import (
    HAVE_SHARED_MEMORY,
    AttachedColumns,
    ColumnHandle,
    ColumnShipment,
    attach_columns,
    ship_columns,
)

__all__ = [
    "SERIAL",
    "ParallelConfig",
    "available_cpus",
    "resolve",
    "seed_for",
    "WorkerCrashError",
    "parallel_map",
    "pool_available",
    "serial_map",
    "HAVE_SHARED_MEMORY",
    "AttachedColumns",
    "ColumnHandle",
    "ColumnShipment",
    "attach_columns",
    "ship_columns",
]
