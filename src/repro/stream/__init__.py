"""Online streaming substrate: arrival orders and the simulator."""

from repro.stream.arrivals import adversarial_order, by_arrival_time, random_order
from repro.stream.metrics import (
    LatencyProfile,
    budget_utilisation,
    fault_conditioned_latency,
    latency_profile,
    resilience_summary,
    utilisation_summary,
)
from repro.stream.simulator import (
    OnlineAsOffline,
    OnlineSimulator,
    ResilienceStats,
    StreamResult,
)

__all__ = [
    "adversarial_order",
    "by_arrival_time",
    "random_order",
    "LatencyProfile",
    "budget_utilisation",
    "fault_conditioned_latency",
    "latency_profile",
    "resilience_summary",
    "utilisation_summary",
    "OnlineAsOffline",
    "OnlineSimulator",
    "ResilienceStats",
    "StreamResult",
]
