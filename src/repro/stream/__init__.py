"""Online streaming substrate: arrival orders and the simulator."""

from repro.stream.arrivals import adversarial_order, by_arrival_time, random_order
from repro.stream.metrics import (
    LatencyProfile,
    budget_utilisation,
    latency_profile,
    utilisation_summary,
)
from repro.stream.simulator import OnlineAsOffline, OnlineSimulator, StreamResult

__all__ = [
    "adversarial_order",
    "by_arrival_time",
    "random_order",
    "LatencyProfile",
    "budget_utilisation",
    "latency_profile",
    "utilisation_summary",
    "OnlineAsOffline",
    "OnlineSimulator",
    "StreamResult",
]
