"""Operational metrics over streaming results.

The paper's evaluation reports mean CPU time per customer; a deployed
broker also watches tail latencies (p95/p99 against the "customers go
inactive in seconds" deadline) and how evenly vendor budgets burn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.problem import MUAAProblem
from repro.stream.simulator import StreamResult


@dataclass(frozen=True)
class LatencyProfile:
    """Latency distribution of a stream's decisions (seconds).

    Percentiles use ``np.quantile``'s default **linear interpolation**
    between the two nearest order statistics (NumPy's
    ``method="linear"``); e.g. the p50 of ``[0.1, 0.3]`` is exactly
    ``0.2``.  This choice is pinned -- changing the interpolation
    method would silently shift every recorded latency gate.

    Attributes:
        mean: Mean decision time.
        p50: Median.
        p95: 95th percentile.
        p99: 99th percentile.
        worst: Maximum.
    """

    mean: float
    p50: float
    p95: float
    p99: float
    worst: float


def _profile_of(latencies: Sequence[float]) -> LatencyProfile:
    values = np.array(latencies)
    return LatencyProfile(
        mean=float(values.mean()),
        p50=float(np.quantile(values, 0.50)),
        p95=float(np.quantile(values, 0.95)),
        p99=float(np.quantile(values, 0.99)),
        worst=float(values.max()),
    )


def latency_profile(result: StreamResult) -> LatencyProfile:
    """Percentile summary of the recorded per-customer latencies.

    A single-latency stream yields a degenerate profile (every
    percentile equals that latency).

    Raises:
        ValueError: If the stream recorded no latencies.
    """
    if not result.latencies:
        raise ValueError("stream recorded no latencies")
    return _profile_of(result.latencies)


def fault_conditioned_latency(
    result: StreamResult,
) -> Dict[str, Optional[LatencyProfile]]:
    """Latency profiles split by whether the decision hit any fault.

    A degraded decision is one that saw at least one injected fault,
    retry, or fallback; its latency includes every backoff wait, so the
    degraded profile is the fault-conditioned tail the deadline budget
    has to absorb.

    Returns:
        ``{"clean": ..., "degraded": ...}`` with ``None`` for an empty
        side.

    Raises:
        ValueError: If the stream has no resilience accounting.
    """
    stats = result.resilience
    if stats is None:
        raise ValueError("stream has no resilience stats")
    return {
        "clean": _profile_of(stats.clean_latencies)
        if stats.clean_latencies else None,
        "degraded": _profile_of(stats.degraded_latencies)
        if stats.degraded_latencies else None,
    }


def resilience_summary(result: StreamResult) -> Dict[str, float]:
    """Flat counter summary of a resilient stream (for tables/logs).

    Raises:
        ValueError: If the stream has no resilience accounting.
    """
    if result.resilience is None:
        raise ValueError("stream has no resilience stats")
    summary = result.resilience.as_extras()
    summary["customers_lost"] = float(result.customers_lost)
    summary["rejected_instances"] = float(result.rejected_instances)
    return summary


def budget_utilisation(
    problem: MUAAProblem, result: StreamResult
) -> Dict[int, float]:
    """Per-vendor fraction of budget spent (0 for zero-budget vendors)."""
    utilisation: Dict[int, float] = {}
    for vendor in problem.vendors:
        if vendor.budget <= 0:
            utilisation[vendor.vendor_id] = 0.0
            continue
        spent = result.assignment.spend_for_vendor(vendor.vendor_id)
        utilisation[vendor.vendor_id] = spent / vendor.budget
    return utilisation


def utilisation_summary(
    problem: MUAAProblem, result: StreamResult
) -> Dict[str, float]:
    """Aggregate budget-burn statistics across vendors.

    Returns:
        ``{"mean", "min", "max", "fully_spent_fraction"}`` where a
        vendor counts as fully spent when its remaining budget cannot
        afford the cheapest ad.
    """
    per_vendor = budget_utilisation(problem, result)
    if not per_vendor:
        return {
            "mean": 0.0, "min": 0.0, "max": 0.0, "fully_spent_fraction": 0.0
        }
    values = np.array(list(per_vendor.values()))
    fully_spent = 0
    for vendor in problem.vendors:
        remaining = vendor.budget - result.assignment.spend_for_vendor(
            vendor.vendor_id
        )
        if remaining < problem.min_cost:
            fully_spent += 1
    return {
        "mean": float(values.mean()),
        "min": float(values.min()),
        "max": float(values.max()),
        "fully_spent_fraction": fully_spent / len(problem.vendors),
    }
