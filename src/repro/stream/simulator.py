"""Streaming simulator for the online MUAA setting (Section IV).

Customers arrive one at a time; the online algorithm must decide that
customer's ads immediately, seeing only the static vendor state and the
budgets consumed so far.  The simulator owns the committed assignment
(so budgets are authoritative), measures per-customer decision latency,
and can wrap any online algorithm as an offline one for the shared
experiment harness.

All timing flows through an injectable clock (any zero-argument
callable returning monotonic seconds, e.g.
:class:`repro.resilience.clock.SimulatedClock`); the default remains
wall-clock ``time.perf_counter``, but with a simulated clock the
decision-deadline drop path is fully deterministic and testable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.algorithms.base import OfflineAlgorithm, OnlineAlgorithm, SolveResult
from repro.core.assignment import Assignment
from repro.core.entities import Customer
from repro.core.problem import MUAAProblem
from repro.obs.recorder import recorder
from repro.stream.arrivals import by_arrival_time


@dataclass
class ResilienceStats:
    """Operational counters of one resilient (fault-injected) stream.

    Produced by :class:`repro.resilience.broker.ResilientBroker`; plain
    data so the stream layer stays independent of the resilience
    machinery.

    Attributes:
        retries: Dependency-call retries performed (backoff waits).
        timeouts: Per-call timeout failures observed.
        faults_injected: ``"dependency:kind"`` -> injected fault count.
        breaker_transitions: ``(dependency, time, from, to)`` breaker
            state changes, in order.
        breaker_counts: Dependency name -> transitions *into* each
            breaker state (``"open"`` / ``"half_open"`` / ``"closed"``),
            e.g. ``{"utility": {"open": 2, "half_open": 2,
            "closed": 1}}``.  The per-dependency rollup of
            ``breaker_transitions``, so shard/dependency breaker
            behaviour is directly assertable.
        degraded_decisions: Decisions served by a fallback tier rather
            than the primary algorithm.
        decisions_by_tier: Tier name -> decisions served by that tier.
        decisions_abandoned: Customers for whom every tier failed (the
            broker served no ads but did not crash).
        duplicates_suppressed: Delivery re-attempts recognised as
            already-committed (a lost ack would otherwise have
            double-charged the vendor).
        deliveries_failed: Decided instances whose commit failed every
            attempt (the ad was decided but never delivered).
        arrivals_dropped: Customers lost upstream of the broker.
        arrivals_reordered: Customers delivered out of arrival order.
        exhausted_skips: Candidate-scan skips of vendors whose budget
            was exhausted (the work saved by
            ``deactivate_exhausted``-style filtering).
        vendors_deactivated: Vendors auto-deactivated after their
            remaining budget dropped below the cheapest ad price.
        churn_epoch: The churn epoch at the end of the run (0 when no
            churn was applied).
        clean_latencies: Decision latencies of fault-free decisions.
        degraded_latencies: Decision latencies of decisions that hit at
            least one fault, retry, or fallback (the fault-conditioned
            tail).
    """

    retries: int = 0
    timeouts: int = 0
    faults_injected: Dict[str, int] = field(default_factory=dict)
    breaker_transitions: List[Tuple[str, float, str, str]] = field(
        default_factory=list
    )
    breaker_counts: Dict[str, Dict[str, int]] = field(default_factory=dict)
    degraded_decisions: int = 0
    decisions_by_tier: Dict[str, int] = field(default_factory=dict)
    decisions_abandoned: int = 0
    duplicates_suppressed: int = 0
    deliveries_failed: int = 0
    arrivals_dropped: int = 0
    arrivals_reordered: int = 0
    exhausted_skips: int = 0
    vendors_deactivated: int = 0
    churn_epoch: int = 0
    clean_latencies: List[float] = field(default_factory=list)
    degraded_latencies: List[float] = field(default_factory=list)

    @property
    def breaker_opens(self) -> int:
        """Number of transitions into the open state."""
        return sum(
            1 for _, _, _, to_state in self.breaker_transitions
            if to_state == "open"
        )

    @property
    def total_faults(self) -> int:
        """Total injected faults across dependencies and kinds."""
        return sum(self.faults_injected.values())

    @staticmethod
    def count_transitions(
        transitions: Sequence[Tuple[str, float, str, str]],
    ) -> Dict[str, Dict[str, int]]:
        """Roll ``(dep, time, from, to)`` records up into per-dependency
        counts of transitions into each state."""
        counts: Dict[str, Dict[str, int]] = {}
        for name, _, _, to_state in transitions:
            per = counts.setdefault(name, {})
            per[to_state] = per.get(to_state, 0) + 1
        return counts

    def as_extras(self) -> Dict[str, float]:
        """Flat float counters for :class:`SolveResult` ``extras``."""
        extras = {
            "retries": float(self.retries),
            "timeouts": float(self.timeouts),
            "faults_injected": float(self.total_faults),
            "breaker_transitions": float(len(self.breaker_transitions)),
            "breaker_opens": float(self.breaker_opens),
            "degraded_decisions": float(self.degraded_decisions),
            "decisions_abandoned": float(self.decisions_abandoned),
            "duplicates_suppressed": float(self.duplicates_suppressed),
            "deliveries_failed": float(self.deliveries_failed),
            "arrivals_dropped": float(self.arrivals_dropped),
            "arrivals_reordered": float(self.arrivals_reordered),
            "exhausted_skips": float(self.exhausted_skips),
            "vendors_deactivated": float(self.vendors_deactivated),
            "churn_epoch": float(self.churn_epoch),
        }
        for dep in sorted(self.breaker_counts):
            for state, count in sorted(self.breaker_counts[dep].items()):
                extras[f"breaker_{state}.{dep}"] = float(count)
        return extras


@dataclass
class StreamResult:
    """Outcome of simulating one customer stream.

    Attributes:
        assignment: All committed ad instances.
        latencies: Per-customer decision seconds (on the driving
            clock), in arrival order.
        rejected_instances: Instances the algorithm returned but the
            simulator refused (infeasible against committed state);
            a correct algorithm keeps this at zero.
        customers_lost: Customers whose decision exceeded the configured
            deadline (they went inactive before the broker answered).
        resilience: Fault/retry/breaker counters when the stream was
            driven by the resilient broker; ``None`` for plain runs.
        churn_epoch: Churn epoch at the end of the stream (0 when no
            churn schedule was supplied).
        exhausted_skips: Candidate-scan skips of deactivated vendors.
        vendors_deactivated: Vendors auto-deactivated mid-stream after
            exhausting their budget.
    """

    assignment: Assignment
    latencies: List[float] = field(default_factory=list)
    rejected_instances: int = 0
    customers_lost: int = 0
    resilience: Optional[ResilienceStats] = None
    churn_epoch: int = 0
    exhausted_skips: int = 0
    vendors_deactivated: int = 0

    @property
    def total_utility(self) -> float:
        """Overall utility of the committed assignment."""
        return self.assignment.total_utility

    @property
    def mean_latency(self) -> float:
        """Mean per-customer decision time in seconds."""
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)


class OnlineSimulator:
    """Drives an online algorithm over an arrival sequence.

    Args:
        problem: The MUAA instance; its customer list is only used when
            no explicit arrival sequence is supplied (then arrival-time
            order is used).
        clock: Zero-argument callable returning monotonic seconds,
            used for latency measurement and deadline enforcement.
            Defaults to wall-clock ``time.perf_counter``; inject a
            :class:`repro.resilience.clock.SimulatedClock` for
            deterministic deadline tests.
    """

    def __init__(
        self,
        problem: MUAAProblem,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self._problem = problem
        self._clock: Callable[[], float] = clock or time.perf_counter

    def run(
        self,
        algorithm: OnlineAlgorithm,
        arrivals: Optional[Sequence[Customer]] = None,
        measure_latency: bool = True,
        decision_deadline: Optional[float] = None,
        warm_engine: bool = False,
        shard_plan=None,
        churn=None,
        churn_cold_rebuild: bool = False,
        moves=None,
    ) -> StreamResult:
        """Simulate the stream and return the committed assignment.

        Each instance returned by the algorithm is validated against the
        committed state before being applied; infeasible ones are
        counted and dropped rather than corrupting budgets.

        Args:
            algorithm: The online algorithm under test.
            arrivals: Arrival order (arrival-time order by default).
            measure_latency: Record per-customer decision seconds.
            decision_deadline: When set, a customer whose decision took
                longer than this many seconds is *lost* -- their ads are
                dropped (counted in ``customers_lost``).  Models
                Section II-E's observation that customers switch to the
                inactive status within seconds, so slow brokers lose
                the impression.  Implies latency measurement.
            warm_engine: Batch-score every candidate edge through the
                compute engine *before* the stream starts (a broker
                precomputing the day's candidate table).  Per-customer
                lookups then ride the columnar table; latencies exclude
                the precompute by design.  Without this, lookups stay
                on the scalar path unless something else already built
                the engine (e.g. calibrating on this same instance).
            shard_plan: Optional :class:`~repro.sharding.ShardPlan`.
                Each arriving customer is routed by location to one
                shard and decided against that shard's problem view
                only, so per-decision work (and any warm engine) covers
                one shard's columns.  A customer replicated across
                shards sees just its routed shard's vendors -- the
                locality/quality trade-off documented in
                ``docs/sharding.md``.  Commits still land on the global
                assignment, so budgets stay authoritative.
            churn: Optional :class:`~repro.churn.ChurnSchedule`.
                Events scheduled at arrival index ``t`` are applied
                (through the plan when one is active, else directly on
                the problem) *before* customer ``t`` is decided, so the
                stream serves against the post-churn marketplace.  The
                final epoch lands in ``StreamResult.churn_epoch``.
            churn_cold_rebuild: With ``churn``, rebuild from scratch
                after every applied event instead of splicing deltas
                (shard views released / engine dropped, then re-warmed
                when ``warm_engine`` was requested).  The parity
                reference the delta path is tested against.
            moves: Optional :class:`~repro.scenario.trajectory.
                MoveSchedule` (trajectory scenarios).  Moves scheduled
                at arrival index ``t`` are applied (through the plan
                when one is active, else directly on the problem)
                *before* customer ``t`` is decided, advancing the
                problem's location epoch so the moved customers'
                candidate ranges are re-resolved; the arriving entity
                is refreshed so routing sees the new location.
        """
        problem = self._problem
        plan = shard_plan
        if plan is not None and plan.is_identity:
            plan = None  # identity plan == the global problem itself
        if warm_engine:
            if plan is not None:
                # Warm shard views instead of the global table; the
                # views stay resident for per-decision lookups.
                for shard in range(plan.n_shards):
                    plan.problem_for(shard).warm_utilities()
            else:
                problem.warm_utilities()
        if arrivals is None:
            arrivals = by_arrival_time(problem.customers)
        assignment = problem.new_assignment()
        result = StreamResult(assignment=assignment)
        algorithm.reset(problem)

        # Decisions may be deferred (micro-batching), so an instance is
        # admissible for any customer that has *already arrived* -- but
        # never for a future or unknown one, which would break the
        # online model.
        seen = set()
        rec = recorder()
        timed = measure_latency or decision_deadline is not None
        base_skips = problem.churn.skips
        try:
            for tick, customer in enumerate(arrivals):
                if churn is not None:
                    # Events flow through the plan even when it is the
                    # identity one, so its churn log/epoch stay correct
                    # for cluster replay.
                    self._apply_churn(
                        churn.at(tick),
                        shard_plan,
                        plan,
                        churn_cold_rebuild,
                        warm_engine,
                    )
                if moves is not None:
                    self._apply_moves(moves.at(tick), shard_plan)
                    # The arriving entity may have been relocated by a
                    # move at this very tick; route by the fresh one.
                    customer = problem.customers_by_id.get(
                        customer.customer_id, customer
                    )
                seen.add(customer.customer_id)
                target = problem
                span_attrs = {"customer": customer.customer_id}
                if churn is not None:
                    span_attrs["epoch"] = problem.churn.epoch
                if plan is not None:
                    shard = plan.route(customer)
                    if shard is not None:
                        target = plan.problem_for(shard)
                        span_attrs["shard"] = shard
                        rec.count("stream.shard_decisions")
                if timed:
                    start = self._clock()
                with rec.span("stream.decision", **span_attrs):
                    picked = algorithm.process_customer(
                        target, customer, assignment
                    )
                if timed:
                    elapsed = self._clock() - start
                    rec.observe("stream.decision_seconds", elapsed)
                    if measure_latency:
                        result.latencies.append(elapsed)
                    if (
                        decision_deadline is not None
                        and elapsed > decision_deadline
                    ):
                        result.customers_lost += 1
                        rec.count("stream.deadline_drops")
                        continue  # customer went inactive; ads dropped
                for instance in picked:
                    if instance.customer_id not in seen:
                        result.rejected_instances += 1
                        rec.count("stream.rejected_instances")
                        continue
                    if assignment.add(instance, strict=False):
                        rec.count("stream.budget_commits")
                        if problem.note_if_exhausted(
                            assignment, instance.vendor_id
                        ):
                            result.vendors_deactivated += 1
                            rec.count("stream.vendors_deactivated")
                    else:
                        result.rejected_instances += 1
                        rec.count("stream.rejected_instances")
        finally:
            # Auto-deactivations are run-local (the assignment dies with
            # the run); roll them back so the problem stays reusable.
            problem.reset_auto_deactivations()
            # Customer moves are likewise run-local: restore first-seen
            # locations so every panel member streams the same workload.
            if moves is not None:
                if shard_plan is not None:
                    shard_plan.reset_moves()
                else:
                    problem.reset_moves()
        result.churn_epoch = problem.churn.epoch
        result.exhausted_skips = problem.churn.skips - base_skips
        if result.exhausted_skips:
            rec.gauge("stream.exhausted_skips", result.exhausted_skips)
        return result

    def _apply_moves(self, due, churn_plan) -> None:
        """Apply customer moves due at one arrival tick.

        Moves flow through the plan when one was supplied (even the
        identity plan, which delegates straight to the problem) so
        shard membership and resident views stay in sync.
        """
        if not due:
            return
        problem = self._problem
        rec = recorder()
        for move in due:
            if churn_plan is not None:
                applied = churn_plan.move_customer(
                    move.customer_id, move.location
                )
            else:
                applied = problem.move_customer(
                    move.customer_id, move.location
                )
            if applied:
                rec.count("stream.customer_moves")
                rec.event(
                    "stream.move",
                    customer=move.customer_id,
                    epoch=problem.location_epoch,
                )

    def _apply_churn(
        self, events, churn_plan, plan, cold_rebuild: bool, warm_engine: bool
    ) -> None:
        """Apply churn events due at one arrival tick.

        ``churn_plan`` is the plan the events commit through (possibly
        the identity plan, whose log must still advance); ``plan`` is
        the routing plan (``None`` when decisions run unsharded).
        """
        if not events:
            return
        problem = self._problem
        rec = recorder()
        for event in events:
            if churn_plan is not None:
                churn_plan.apply_churn(event)
            else:
                problem.apply_churn(event)
            rec.count("stream.churn_events")
            rec.event(
                "stream.churn",
                kind=event.kind,
                epoch=problem.churn.epoch,
            )
        if cold_rebuild:
            # Parity reference: tear every incremental structure down
            # and rebuild from scratch.
            if plan is not None:
                plan.release_all()
                if warm_engine:
                    for shard in range(plan.n_shards):
                        plan.problem_for(shard).warm_utilities()
            else:
                problem.drop_engine()
                if warm_engine:
                    problem.warm_utilities()


class OnlineAsOffline(OfflineAlgorithm):
    """Adapter: run an online algorithm through the offline interface.

    The shared experiment runner treats every algorithm as offline; this
    adapter streams the customers in arrival-time order and reports the
    simulator's mean per-customer latency (the paper's "CPU time" for
    online algorithms).  Stream-level diagnostics -- rejected
    instances, lost customers, and any resilience counters -- are
    propagated into :attr:`SolveResult.extras`.

    Args:
        algorithm: The online algorithm to adapt.
        clock: Optional clock forwarded to the simulator.
        decision_deadline: Optional decision deadline forwarded to the
            simulator.
        warm_engine: Forwarded to :meth:`OnlineSimulator.run` -- batch
            precompute of the candidate table before the stream.
        shard_plan: Forwarded to :meth:`OnlineSimulator.run` -- route
            each arrival to its spatial shard's problem view.
        moves: Forwarded to :meth:`OnlineSimulator.run` -- a trajectory
            scenario's mid-stream customer relocation schedule.
    """

    def __init__(
        self,
        algorithm: OnlineAlgorithm,
        clock: Optional[Callable[[], float]] = None,
        decision_deadline: Optional[float] = None,
        warm_engine: bool = False,
        shard_plan=None,
        moves=None,
    ) -> None:
        self._algorithm = algorithm
        self._clock = clock
        self._deadline = decision_deadline
        self._warm_engine = warm_engine
        self._shard_plan = shard_plan
        self._moves = moves
        self.name = algorithm.name
        self.last_stream_result: Optional[StreamResult] = None

    def solve(self, problem: MUAAProblem) -> Assignment:
        result = OnlineSimulator(problem, clock=self._clock).run(
            self._algorithm,
            decision_deadline=self._deadline,
            warm_engine=self._warm_engine,
            shard_plan=self._shard_plan,
            moves=self._moves,
        )
        self.last_stream_result = result
        return result.assignment

    def run(self, problem: MUAAProblem) -> SolveResult:
        start = time.perf_counter()
        assignment = self.solve(problem)
        elapsed = time.perf_counter() - start
        stream = self.last_stream_result
        per_customer = stream.mean_latency if stream is not None else 0.0
        extras: Dict[str, float] = {}
        if stream is not None:
            extras["rejected_instances"] = float(stream.rejected_instances)
            extras["customers_lost"] = float(stream.customers_lost)
            if stream.resilience is not None:
                extras.update(stream.resilience.as_extras())
        return SolveResult(
            algorithm=self.name,
            assignment=assignment,
            wall_time=elapsed,
            per_customer_seconds=per_customer,
            extras=extras,
        )
