"""Streaming simulator for the online MUAA setting (Section IV).

Customers arrive one at a time; the online algorithm must decide that
customer's ads immediately, seeing only the static vendor state and the
budgets consumed so far.  The simulator owns the committed assignment
(so budgets are authoritative), measures per-customer decision latency,
and can wrap any online algorithm as an offline one for the shared
experiment harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.algorithms.base import OfflineAlgorithm, OnlineAlgorithm, SolveResult
from repro.core.assignment import Assignment
from repro.core.entities import Customer
from repro.core.problem import MUAAProblem
from repro.stream.arrivals import by_arrival_time


@dataclass
class StreamResult:
    """Outcome of simulating one customer stream.

    Attributes:
        assignment: All committed ad instances.
        latencies: Per-customer decision wall-clock seconds, in arrival
            order.
        rejected_instances: Instances the algorithm returned but the
            simulator refused (infeasible against committed state);
            a correct algorithm keeps this at zero.
        customers_lost: Customers whose decision exceeded the configured
            deadline (they went inactive before the broker answered).
    """

    assignment: Assignment
    latencies: List[float] = field(default_factory=list)
    rejected_instances: int = 0
    customers_lost: int = 0

    @property
    def total_utility(self) -> float:
        """Overall utility of the committed assignment."""
        return self.assignment.total_utility

    @property
    def mean_latency(self) -> float:
        """Mean per-customer decision time in seconds."""
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)


class OnlineSimulator:
    """Drives an online algorithm over an arrival sequence.

    Args:
        problem: The MUAA instance; its customer list is only used when
            no explicit arrival sequence is supplied (then arrival-time
            order is used).
    """

    def __init__(self, problem: MUAAProblem) -> None:
        self._problem = problem

    def run(
        self,
        algorithm: OnlineAlgorithm,
        arrivals: Optional[Sequence[Customer]] = None,
        measure_latency: bool = True,
        decision_deadline: Optional[float] = None,
    ) -> StreamResult:
        """Simulate the stream and return the committed assignment.

        Each instance returned by the algorithm is validated against the
        committed state before being applied; infeasible ones are
        counted and dropped rather than corrupting budgets.

        Args:
            algorithm: The online algorithm under test.
            arrivals: Arrival order (arrival-time order by default).
            measure_latency: Record per-customer decision seconds.
            decision_deadline: When set, a customer whose decision took
                longer than this many seconds is *lost* -- their ads are
                dropped (counted in ``customers_lost``).  Models
                Section II-E's observation that customers switch to the
                inactive status within seconds, so slow brokers lose
                the impression.  Implies latency measurement.
        """
        problem = self._problem
        if arrivals is None:
            arrivals = by_arrival_time(problem.customers)
        assignment = problem.new_assignment()
        result = StreamResult(assignment=assignment)
        algorithm.reset(problem)

        # Decisions may be deferred (micro-batching), so an instance is
        # admissible for any customer that has *already arrived* -- but
        # never for a future or unknown one, which would break the
        # online model.
        seen = set()
        timed = measure_latency or decision_deadline is not None
        for customer in arrivals:
            seen.add(customer.customer_id)
            if timed:
                start = time.perf_counter()
            picked = algorithm.process_customer(problem, customer, assignment)
            if timed:
                elapsed = time.perf_counter() - start
                if measure_latency:
                    result.latencies.append(elapsed)
                if (
                    decision_deadline is not None
                    and elapsed > decision_deadline
                ):
                    result.customers_lost += 1
                    continue  # customer went inactive; ads are dropped
            for instance in picked:
                if instance.customer_id not in seen:
                    result.rejected_instances += 1
                    continue
                if not assignment.add(instance, strict=False):
                    result.rejected_instances += 1
        return result


class OnlineAsOffline(OfflineAlgorithm):
    """Adapter: run an online algorithm through the offline interface.

    The shared experiment runner treats every algorithm as offline; this
    adapter streams the customers in arrival-time order and reports the
    simulator's mean per-customer latency (the paper's "CPU time" for
    online algorithms).
    """

    def __init__(self, algorithm: OnlineAlgorithm) -> None:
        self._algorithm = algorithm
        self.name = algorithm.name
        self.last_stream_result: Optional[StreamResult] = None

    def solve(self, problem: MUAAProblem) -> Assignment:
        result = OnlineSimulator(problem).run(self._algorithm)
        self.last_stream_result = result
        return result.assignment

    def run(self, problem: MUAAProblem) -> SolveResult:
        start = time.perf_counter()
        assignment = self.solve(problem)
        elapsed = time.perf_counter() - start
        stream = self.last_stream_result
        per_customer = stream.mean_latency if stream is not None else 0.0
        extras = {}
        if stream is not None:
            extras["rejected_instances"] = float(stream.rejected_instances)
        return SolveResult(
            algorithm=self.name,
            assignment=assignment,
            wall_time=elapsed,
            per_customer_seconds=per_customer,
            extras=extras,
        )
