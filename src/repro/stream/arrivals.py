"""Arrival processes for the online MUAA setting.

The paper notes that only the *order* of customers matters to the online
algorithm; these helpers produce arrival orders, either by the
customers' timestamps (the real-data convention: check-in times modulo
24 hours) or by an explicit random permutation (the synthetic-data
convention: "we use the orders of the customers to indicate their
timestamps").
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.entities import Customer


def by_arrival_time(customers: Sequence[Customer]) -> List[Customer]:
    """Customers sorted by their timestamps (stable for ties)."""
    return sorted(customers, key=lambda c: c.arrival_time)


def random_order(
    customers: Sequence[Customer], seed: Optional[int] = None
) -> List[Customer]:
    """A uniformly random arrival order."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(customers))
    return [customers[i] for i in order]


def adversarial_order(customers: Sequence[Customer]) -> List[Customer]:
    """Low-value customers first (stress order for online algorithms).

    Sorting by increasing view probability front-loads the weakest
    customers, which is the regime where threshold-less online
    strategies burn their budgets worst; used in the competitive-ratio
    benchmarks.
    """
    return sorted(customers, key=lambda c: c.view_probability)
