"""Arrival processes for the online MUAA setting.

The paper notes that only the *order* of customers matters to the online
algorithm; these helpers produce arrival orders, either by the
customers' timestamps (the real-data convention: check-in times modulo
24 hours) or by an explicit random permutation (the synthetic-data
convention: "we use the orders of the customers to indicate their
timestamps").
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.entities import Customer


def by_arrival_time(customers: Sequence[Customer]) -> List[Customer]:
    """Customers sorted by their timestamps (stable for ties)."""
    return sorted(customers, key=lambda c: c.arrival_time)


def random_order(
    customers: Sequence[Customer], seed: Optional[int] = None
) -> List[Customer]:
    """A uniformly random arrival order."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(customers))
    return [customers[i] for i in order]


def poisson_times(
    n: int, rate: float, seed: Optional[int] = None
) -> List[float]:
    """``n`` seeded Poisson-process arrival times at ``rate`` per second.

    Cumulative sums of exponential inter-arrival gaps -- the standard
    open-loop load model (arrivals do not wait for responses).

    Raises:
        ValueError: On a non-positive ``rate``.
    """
    if rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate}")
    if n <= 0:
        return []
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate, size=n)
    return np.cumsum(gaps).tolist()


def bursty_times(
    n: int,
    rate: float,
    seed: Optional[int] = None,
    burst_fraction: float = 0.5,
    burst_factor: float = 10.0,
) -> List[float]:
    """``n`` seeded bursty arrival times averaging ``rate`` per second.

    A two-state modulated Poisson process: a ``burst_fraction`` share of
    arrivals lands in bursts running ``burst_factor`` times hotter than
    the base rate, the rest in quiet stretches correspondingly slower,
    so the long-run mean rate stays ``rate``.  Each state change flips
    after a geometric number of arrivals, all from the one seeded
    generator.

    Raises:
        ValueError: On a non-positive ``rate`` or ``burst_factor <= 1``,
            or ``burst_fraction`` outside (0, 1).
    """
    if rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate}")
    if burst_factor <= 1.0:
        raise ValueError(f"burst_factor must exceed 1, got {burst_factor}")
    if not 0.0 < burst_fraction < 1.0:
        raise ValueError(
            f"burst_fraction must be in (0, 1), got {burst_fraction}"
        )
    if n <= 0:
        return []
    rng = np.random.default_rng(seed)
    hot_rate = rate * burst_factor
    # The quiet rate that keeps the long-run mean at ``rate`` given the
    # share of arrivals drawn in each state.
    quiet_share = 1.0 - burst_fraction
    quiet_rate = quiet_share / (1.0 / rate - burst_fraction / hot_rate)
    times: List[float] = []
    now = 0.0
    in_burst = False
    remaining = 0
    while len(times) < n:
        if remaining <= 0:
            in_burst = not in_burst
            share = burst_fraction if in_burst else quiet_share
            # Expected run length ~ share of a 20-arrival cycle.
            mean_run = max(1.0, 20.0 * share)
            remaining = 1 + int(rng.geometric(1.0 / mean_run))
        state_rate = hot_rate if in_burst else quiet_rate
        now += float(rng.exponential(1.0 / state_rate))
        times.append(now)
        remaining -= 1
    return times


def adversarial_order(customers: Sequence[Customer]) -> List[Customer]:
    """Low-value customers first (stress order for online algorithms).

    Sorting by increasing view probability front-loads the weakest
    customers, which is the regime where threshold-less online
    strategies burn their budgets worst; used in the competitive-ratio
    benchmarks.
    """
    return sorted(customers, key=lambda c: c.view_probability)
