"""Tag taxonomy substrate: the category tree and interest-vector maths."""

from repro.taxonomy.foursquare import FOURSQUARE_CATEGORIES, foursquare_taxonomy
from repro.taxonomy.interest import (
    DEFAULT_KAPPA,
    DEFAULT_OVERALL_SCORE,
    interest_vector,
    propagate_score,
    topic_scores,
    vendor_vector,
)
from repro.taxonomy.tree import ROOT, Taxonomy

__all__ = [
    "FOURSQUARE_CATEGORIES",
    "foursquare_taxonomy",
    "DEFAULT_KAPPA",
    "DEFAULT_OVERALL_SCORE",
    "interest_vector",
    "propagate_score",
    "topic_scores",
    "vendor_vector",
    "ROOT",
    "Taxonomy",
]
