"""A built-in Foursquare-style venue category taxonomy.

The paper (Section II, Fig. 2) uses the Foursquare category hierarchy as
its tag taxonomy.  This module ships a two-level snapshot of that
hierarchy -- the nine classic top-level categories and a representative
set of subcategories -- large enough to exercise every code path
(propagation up paths, sibling counts, diurnal activity per category)
without requiring network access to the Foursquare API.

The exact membership of the tree does not affect algorithm correctness;
it only shapes the synthetic workloads.
"""

from __future__ import annotations

from repro.taxonomy.tree import Taxonomy

#: (top-level category, subcategories) in Foursquare's classic layout.
FOURSQUARE_CATEGORIES = (
    (
        "Arts & Entertainment",
        (
            "Movie Theater",
            "Museum",
            "Music Venue",
            "Stadium",
            "Theme Park",
            "Art Gallery",
            "Aquarium",
            "Casino",
        ),
    ),
    (
        "College & University",
        (
            "Academic Building",
            "University Library",
            "Student Center",
            "College Cafeteria",
            "Lab",
        ),
    ),
    (
        "Food",
        (
            "Ramen Restaurant",
            "Sushi Restaurant",
            "Pizza Place",
            "Coffee Shop",
            "Teahouse",
            "Burger Joint",
            "Bakery",
            "Chinese Restaurant",
            "Italian Restaurant",
            "Fast Food Restaurant",
            "Dessert Shop",
            "BBQ Joint",
        ),
    ),
    (
        "Nightlife Spot",
        (
            "Bar",
            "Nightclub",
            "Pub",
            "Karaoke Box",
            "Cocktail Bar",
            "Sake Bar",
        ),
    ),
    (
        "Outdoors & Recreation",
        (
            "Park",
            "Gym",
            "Trail",
            "Beach",
            "Playground",
            "Ski Area",
            "Garden",
        ),
    ),
    (
        "Professional & Other Places",
        (
            "Office",
            "Coworking Space",
            "Convention Center",
            "Medical Center",
            "Post Office",
        ),
    ),
    (
        "Residence",
        (
            "Home",
            "Apartment Building",
            "Housing Development",
        ),
    ),
    (
        "Shop & Service",
        (
            "Convenience Store",
            "Electronics Store",
            "Bookstore",
            "Clothing Store",
            "Shoe Store",
            "Supermarket",
            "Department Store",
            "Salon / Barbershop",
            "Drugstore",
            "Sporting Goods Shop",
        ),
    ),
    (
        "Travel & Transport",
        (
            "Train Station",
            "Bus Station",
            "Airport",
            "Hotel",
            "Metro Station",
            "Taxi Stand",
        ),
    ),
)


def foursquare_taxonomy() -> Taxonomy:
    """Build the built-in two-level Foursquare-style taxonomy.

    Returns:
        A fresh :class:`~repro.taxonomy.tree.Taxonomy` with 9 top-level
        categories and their subcategories, every call independent.
    """
    tax = Taxonomy()
    for top, subs in FOURSQUARE_CATEGORIES:
        tax.add(top)
        for sub in subs:
            tax.add(sub, parent=top)
    return tax
