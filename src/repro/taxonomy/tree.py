"""Tag taxonomy tree (the Foursquare-style category hierarchy of Fig. 2).

The taxonomy is a rooted tree over tag names.  Interest-vector
computation (Eqs. 1-3) needs, for every tag, the path to the root and
the number of siblings at each step, both of which this class provides
in O(depth).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import TaxonomyError

#: Name of the implicit root node of every taxonomy.
ROOT = "__root__"


class Taxonomy:
    """A rooted tree of tags with stable integer indexing.

    Tags are registered parent-first via :meth:`add`; the root exists
    implicitly.  Every non-root tag gets a dense integer index (in
    registration order) used to address interest-vector entries.

    Example:
        >>> tax = Taxonomy()
        >>> tax.add("food")
        >>> tax.add("pizza", parent="food")
        >>> tax.path_to_root("pizza")
        ['pizza', 'food']
    """

    def __init__(self) -> None:
        self._parent: Dict[str, Optional[str]] = {ROOT: None}
        self._children: Dict[str, List[str]] = {ROOT: []}
        self._index: Dict[str, int] = {}
        self._names: List[str] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, tag: str, parent: Optional[str] = None) -> None:
        """Register a tag under ``parent`` (root when omitted).

        Raises:
            TaxonomyError: On duplicate tags or unknown parents.
        """
        if tag == ROOT:
            raise TaxonomyError("the root tag name is reserved")
        if tag in self._parent:
            raise TaxonomyError(f"duplicate tag {tag!r}")
        parent_name = parent if parent is not None else ROOT
        if parent_name not in self._parent:
            raise TaxonomyError(
                f"unknown parent {parent_name!r} for tag {tag!r} "
                "(register parents before children)"
            )
        self._parent[tag] = parent_name
        self._children[tag] = []
        self._children[parent_name].append(tag)
        self._index[tag] = len(self._names)
        self._names.append(tag)

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[Optional[str], str]]) -> "Taxonomy":
        """Build from ``(parent, child)`` pairs; ``None`` parent means root."""
        tax = cls()
        for parent, child in edges:
            tax.add(child, parent=parent)
        return tax

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, tag: str) -> bool:
        return tag in self._index

    @property
    def tags(self) -> Sequence[str]:
        """All non-root tags in index order."""
        return tuple(self._names)

    def index(self, tag: str) -> int:
        """Dense integer index of a tag.

        Raises:
            TaxonomyError: If the tag is unknown.
        """
        try:
            return self._index[tag]
        except KeyError:
            raise TaxonomyError(f"unknown tag {tag!r}") from None

    def name(self, index: int) -> str:
        """Inverse of :meth:`index`."""
        return self._names[index]

    def parent(self, tag: str) -> Optional[str]:
        """Parent tag, or ``None`` for a top-level tag."""
        self.index(tag)  # existence check
        parent = self._parent[tag]
        return None if parent == ROOT else parent

    def children(self, tag: str) -> Sequence[str]:
        """Direct children of a tag (or of the root for ``None``)."""
        key = tag if tag is not None else ROOT
        if key not in self._children:
            raise TaxonomyError(f"unknown tag {tag!r}")
        return tuple(self._children[key])

    def top_level(self) -> Sequence[str]:
        """The tags directly under the root."""
        return tuple(self._children[ROOT])

    def siblings(self, tag: str) -> int:
        """Number of siblings of ``tag`` (excluding the tag itself)."""
        self.index(tag)
        parent = self._parent[tag]
        return len(self._children[parent]) - 1

    def path_to_root(self, tag: str) -> List[str]:
        """Tags from ``tag`` up to (excluding) the root, leaf first."""
        self.index(tag)
        path = []
        current: Optional[str] = tag
        while current is not None and current != ROOT:
            path.append(current)
            current = self._parent[current]
        return path

    def depth(self, tag: str) -> int:
        """Depth of a tag; top-level tags have depth 1."""
        return len(self.path_to_root(tag))

    def leaves(self) -> List[str]:
        """All tags without children."""
        return [t for t in self._names if not self._children[t]]

    def is_leaf(self, tag: str) -> bool:
        """Whether a tag has no children."""
        self.index(tag)
        return not self._children[tag]

    def ancestor_at_depth(self, tag: str, depth: int = 1) -> str:
        """The ancestor of ``tag`` at the given depth (1 = top level)."""
        path = self.path_to_root(tag)
        if depth < 1 or depth > len(path):
            raise TaxonomyError(
                f"tag {tag!r} has depth {len(path)}, no ancestor at {depth}"
            )
        return path[len(path) - depth]
