"""Taxonomy-driven interest vectors from check-in histories (Eqs. 1-3).

Following Ziegler et al. as adopted by the paper (Section II-A): a
customer's check-ins yield per-tag topic scores (Eq. 1); each topic
score is distributed along the tag's path to the root so that explicit
interest in a subcategory implies diluted interest in its ancestors
(Eqs. 2-3), with propagation factor :math:`\\kappa` and equal sharing
among siblings.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from repro.exceptions import TaxonomyError
from repro.taxonomy.tree import Taxonomy

#: Default propagation factor kappa of Eq. 3.
DEFAULT_KAPPA = 0.5

#: Default fixed overall score s distributed over checked-in tags (Eq. 1).
DEFAULT_OVERALL_SCORE = 1.0


def topic_scores(
    checkins: Mapping[str, int],
    overall_score: float = DEFAULT_OVERALL_SCORE,
) -> Dict[str, float]:
    """Eq. 1: distribute a fixed overall score over checked-in tags.

    Args:
        checkins: Tag -> number of check-ins :math:`h(g_k)` for one user.
        overall_score: The arbitrary fixed score :math:`s`.

    Returns:
        Tag -> topic score :math:`sc(g_k)`.  Tags with zero check-ins
        are dropped; an empty history yields an empty mapping.
    """
    total = sum(count for count in checkins.values() if count > 0)
    if total <= 0:
        return {}
    return {
        tag: overall_score * count / total
        for tag, count in checkins.items()
        if count > 0
    }


def propagate_score(
    taxonomy: Taxonomy,
    tag: str,
    score: float,
    kappa: float = DEFAULT_KAPPA,
) -> Dict[str, float]:
    """Eqs. 2-3: split one topic score along the tag's path to the root.

    The interest scores :math:`sco(e_m)` along the path satisfy both the
    conservation constraint :math:`\\sum_m sco(e_m) = sc(g_k)` (Eq. 2)
    and the sibling-sharing recurrence
    :math:`sco(e_{m-1}) = \\kappa \\cdot sco(e_m) / (sib(e_m) + 1)`
    (Eq. 3).  Solving the two gives a unique score for every tag on the
    path, computed here in closed form.

    Args:
        taxonomy: The tag taxonomy.
        tag: The checked-in tag :math:`g_k` (must exist in the taxonomy).
        score: The topic score :math:`sc(g_k)` from Eq. 1.
        kappa: Propagation factor.

    Returns:
        Tag -> interest score contribution for every tag on the path
        (leaf included, implicit root excluded).
    """
    path = taxonomy.path_to_root(tag)  # leaf first, excludes root
    # Weight of each path node relative to the leaf: w_leaf = 1 and going
    # up one level multiplies by kappa / (siblings + 1).
    weights = [1.0]
    for node in path[:-1]:
        step = kappa / (taxonomy.siblings(node) + 1)
        weights.append(weights[-1] * step)
    total_weight = sum(weights)
    base = score / total_weight
    return {node: base * weight for node, weight in zip(path, weights)}


def interest_vector(
    taxonomy: Taxonomy,
    checkins: Mapping[str, int],
    kappa: float = DEFAULT_KAPPA,
    overall_score: float = DEFAULT_OVERALL_SCORE,
    normalize: Optional[str] = "max",
) -> np.ndarray:
    """Customer interest vector :math:`\\psi_i` from a check-in history.

    Combines Eq. 1 (topic scores) with Eqs. 2-3 (path propagation) and
    sums the contributions per tag, as described in Section II-A.

    Args:
        taxonomy: The tag taxonomy.
        checkins: Tag -> check-in count for the customer.
        kappa: Propagation factor of Eq. 3.
        overall_score: Overall score :math:`s` of Eq. 1.
        normalize: ``"max"`` rescales the vector into ``[0, 1]`` by its
            maximum entry (the paper requires entries in ``[0, 1]``);
            ``"sum"`` makes entries sum to 1; ``None`` keeps raw scores.

    Returns:
        A dense vector indexed by :meth:`Taxonomy.index`.

    Raises:
        TaxonomyError: If a check-in references an unknown tag.
        ValueError: On an unknown ``normalize`` mode.
    """
    if normalize not in (None, "max", "sum"):
        raise ValueError(f"unknown normalize mode {normalize!r}")
    vector = np.zeros(len(taxonomy))
    for tag, score in topic_scores(checkins, overall_score).items():
        if tag not in taxonomy:
            raise TaxonomyError(f"check-in references unknown tag {tag!r}")
        for node, contribution in propagate_score(taxonomy, tag, score, kappa).items():
            vector[taxonomy.index(node)] += contribution
    if normalize == "max":
        peak = vector.max(initial=0.0)
        if peak > 0:
            vector /= peak
    elif normalize == "sum":
        total = vector.sum()
        if total > 0:
            vector /= total
    return vector


def vendor_vector(
    taxonomy: Taxonomy,
    category: str,
    kappa: float = DEFAULT_KAPPA,
    propagate: bool = True,
) -> np.ndarray:
    """Vendor tag vector :math:`\\psi_j` from its venue category.

    The paper's simple rule sets :math:`\\psi_j^{(k)} = 1` for the
    vendor's category.  With ``propagate=True`` (the default, matching
    the "use the similar method in estimating :math:`\\psi_i`" remark)
    the ancestors additionally receive the Eq. 3 propagated shares, so a
    "Pizza Place" vendor is also weakly tagged "Food" -- which is what
    makes customer-vendor Pearson similarity informative.

    Args:
        taxonomy: The tag taxonomy.
        category: The vendor's venue category.
        kappa: Propagation factor used when ``propagate`` is set.
        propagate: Whether to spread weight to ancestor tags.

    Returns:
        A dense vector with the category entry equal to 1.
    """
    vector = np.zeros(len(taxonomy))
    if not propagate:
        vector[taxonomy.index(category)] = 1.0
        return vector
    contributions = propagate_score(taxonomy, category, 1.0, kappa)
    for node, contribution in contributions.items():
        vector[taxonomy.index(node)] = contribution
    peak = vector.max(initial=0.0)
    if peak > 0:
        vector /= peak
    return vector
