"""Counters, gauges, and fixed-bucket histograms with snapshot/merge.

A :class:`MetricsRegistry` owns named instruments:

* :class:`Counter` -- monotonically increasing totals (commits, drops);
* :class:`Gauge` -- last-written values (candidate-edge counts);
* :class:`Histogram` -- fixed upper-bound buckets with count/sum/min/
  max, built for latency distributions.

Snapshots are plain JSON-able dicts, so they pickle across process
boundaries for free.  The algebra the parallel layer relies on:

* ``registry.snapshot()`` captures the current state;
* ``diff_snapshots(now, earlier)`` isolates what happened in between
  (counters and histogram buckets subtract; gauges keep the current
  value);
* ``registry.merge(snapshot)`` folds a child recording in (counters
  and histogram buckets add; gauges take the merged value, last merge
  wins).

Merging requires histogram bucket bounds to match; mismatched schemas
raise rather than silently mixing distributions.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

#: Default histogram buckets (seconds): ~1us .. 30s, log-spaced.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3,
    1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0, 30.0,
)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A last-written value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram of observed values.

    Args:
        buckets: Strictly increasing upper bounds.  An observation
            lands in the first bucket whose bound is >= the value; one
            implicit overflow bucket catches everything larger.
    """

    __slots__ = ("buckets", "counts", "sum", "count", "min", "max")

    def __init__(
        self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError("buckets must be non-empty, strictly increasing")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        lo, hi = 0, len(self.buckets)
        while lo < hi:  # bisect over the bounds
            mid = (lo + hi) // 2
            if self.buckets[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        self.counts[lo] += 1
        self.sum += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile by linear interpolation in-bucket.

        The overflow bucket is represented by the observed maximum.
        Returns ``nan`` with no observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return math.nan
        target = q * self.count
        seen = 0.0
        lower = max(0.0, min(self.min, self.buckets[0]))
        for i, n in enumerate(self.counts):
            if n == 0:
                if i < len(self.buckets):
                    lower = self.buckets[i]
                continue
            upper = self.max if i == len(self.buckets) else min(
                self.buckets[i], self.max
            )
            upper = max(upper, lower)
            if seen + n >= target:
                frac = 0.0 if n == 0 else (target - seen) / n
                return lower + frac * (upper - lower)
            seen += n
            lower = upper if i == len(self.buckets) else self.buckets[i]
        return self.max  # pragma: no cover - loop always returns

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict snapshot of this histogram."""
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
        }


#: A registry snapshot: plain nested dicts (JSON- and pickle-safe).
MetricsSnapshot = Dict[str, Dict[str, object]]


class MetricsRegistry:
    """Named counters, gauges, and histograms of one process."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors (create on first use) --------------------
    def counter(self, name: str) -> Counter:
        """The named counter (created at zero on first access)."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        """The named gauge (created at zero on first access)."""
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        return gauge

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        """The named histogram (default latency buckets on creation)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(
                buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS
            )
        return histogram

    # -- snapshot / merge ----------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        """The registry's current state as plain nested dicts."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.as_dict()
                for name, h in sorted(self._histograms.items())
            },
        }

    def merge(self, snapshot: MetricsSnapshot) -> None:
        """Fold a (child) snapshot into this registry.

        Counters and histogram bucket counts add; gauges take the
        snapshot's value (last merge wins).

        Raises:
            ValueError: When a histogram's bucket bounds differ from
                the local instrument of the same name.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(float(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, data in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name, buckets=data["buckets"])
            if list(histogram.buckets) != list(data["buckets"]):
                raise ValueError(
                    f"histogram {name!r}: bucket bounds differ; refusing "
                    "to merge mismatched schemas"
                )
            for i, n in enumerate(data["counts"]):
                histogram.counts[i] += int(n)
            histogram.sum += float(data["sum"])
            histogram.count += int(data["count"])
            if data["count"]:
                histogram.min = min(histogram.min, float(data["min"]))
                histogram.max = max(histogram.max, float(data["max"]))


def diff_snapshots(
    now: MetricsSnapshot, earlier: MetricsSnapshot
) -> MetricsSnapshot:
    """What happened between two snapshots of the *same* registry.

    Counters and histogram bucket counts subtract; gauges keep their
    ``now`` value.  Instruments absent from ``earlier`` pass through
    unchanged.  Used by the parallel layer to ship only each task's
    increment back to the parent.
    """
    out: MetricsSnapshot = {"counters": {}, "gauges": {}, "histograms": {}}
    earlier_counters = earlier.get("counters", {})
    for name, value in now.get("counters", {}).items():
        delta = float(value) - float(earlier_counters.get(name, 0.0))
        if delta:
            out["counters"][name] = delta
    out["gauges"] = dict(now.get("gauges", {}))
    earlier_hists = earlier.get("histograms", {})
    for name, data in now.get("histograms", {}).items():
        before = earlier_hists.get(name)
        if before is None:
            out["histograms"][name] = data
            continue
        counts = [
            int(n) - int(m) for n, m in zip(data["counts"], before["counts"])
        ]
        count = int(data["count"]) - int(before["count"])
        if count <= 0:
            continue
        out["histograms"][name] = {
            "buckets": list(data["buckets"]),
            "counts": counts,
            "sum": float(data["sum"]) - float(before["sum"]),
            "count": count,
            # Interval extrema are not recoverable from totals; the
            # current extrema are a safe (conservative) envelope.
            "min": data["min"],
            "max": data["max"],
        }
    return out
