"""Hierarchical tracing spans with a Chrome-trace-event exporter.

A :class:`Tracer` records *spans* -- named, nested intervals on a
monotonic clock -- through a context-manager API::

    tracer = Tracer()
    with tracer.span("recon.solve"):
        with tracer.span("recon.vendor", vendor_id=3):
            ...

Span identity is deterministic: ids are dotted paths derived from a
per-parent counter (``"1"``, ``"1.1"``, ``"1.2"``, ``"2"`` ...), never
from object addresses or wall-clock values, so two runs of the same
code produce the same span tree.  Time flows through an injectable
clock -- any zero-argument callable returning monotonic seconds, e.g.
:class:`repro.resilience.clock.SystemClock` or
:class:`~repro.resilience.clock.SimulatedClock` -- so traces are fully
deterministic under a simulated clock.

:func:`chrome_trace` converts spans from any number of *lanes*
(processes/workers) into the Chrome trace-event JSON format, loadable
in ``chrome://tracing`` or `Perfetto <https://ui.perfetto.dev>`_: each
lane becomes one named thread row, spans become complete (``"X"``)
events and zero-duration events become instants (``"i"``).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

#: Lane name of the parent process (workers get their own lanes).
MAIN_LANE = "main"


@dataclass
class Span:
    """One named interval (or instant) on a tracer's clock.

    Attributes:
        name: Stage name, e.g. ``"recon.vendor_mckp"``.
        span_id: Deterministic dotted path (``"2.1"``); unique within
            one lane.
        parent_id: Enclosing span's id, or ``None`` at top level.
        start: Clock reading at entry (seconds).
        end: Clock reading at exit; ``None`` marks an instant event.
        lane: Recording process's lane name.
        args: Extra key/value payload shown by trace viewers.
    """

    name: str
    span_id: str
    parent_id: Optional[str]
    start: float
    end: Optional[float] = None
    lane: str = MAIN_LANE
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 for instant events)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def as_dict(self) -> Dict[str, object]:
        """A plain-dict form (JSON/pickle friendly)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "lane": self.lane,
            "args": dict(self.args),
        }


class _ActiveSpan:
    """Context manager closing one span on exit (re-entrant never)."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc) -> None:
        self._tracer._close(self._span)


class Tracer:
    """Span recorder of one process lane.

    Args:
        clock: Zero-argument callable returning monotonic seconds;
            defaults to ``time.perf_counter``.  On the platforms we
            support ``perf_counter`` reads a system-wide monotonic
            clock, so raw readings from different processes share an
            origin and merge into one coherent timeline.
        lane: Lane name stamped on every span.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        lane: str = MAIN_LANE,
    ) -> None:
        self._clock = clock or time.perf_counter
        self.lane = lane
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._child_counts: Dict[Optional[str], int] = {None: 0}

    def _next_id(self, parent_id: Optional[str]) -> str:
        n = self._child_counts.get(parent_id, 0) + 1
        self._child_counts[parent_id] = n
        return str(n) if parent_id is None else f"{parent_id}.{n}"

    def span(self, name: str, **args: object) -> _ActiveSpan:
        """Open a span; use as ``with tracer.span("stage"): ...``.

        The span is appended to :attr:`spans` immediately (with
        ``end=None``) and closed on context exit, so a crash mid-span
        still leaves the entry visible.
        """
        parent_id = self._stack[-1].span_id if self._stack else None
        span = Span(
            name=name,
            span_id=self._next_id(parent_id),
            parent_id=parent_id,
            start=self._clock(),
            lane=self.lane,
            args=args,
        )
        self.spans.append(span)
        self._stack.append(span)
        return _ActiveSpan(self, span)

    def _close(self, span: Span) -> None:
        span.end = self._clock()
        # Close any deeper spans left open by a non-local exit so the
        # stack never corrupts sibling bookkeeping.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            if top.end is None:
                top.end = span.end

    def event(self, name: str, **args: object) -> Span:
        """Record an instant event (zero-duration span) at *now*."""
        parent_id = self._stack[-1].span_id if self._stack else None
        span = Span(
            name=name,
            span_id=self._next_id(parent_id),
            parent_id=parent_id,
            start=self._clock(),
            end=None,
            lane=self.lane,
            args=args,
        )
        self.spans.append(span)
        return span

    def now(self) -> float:
        """The tracer clock's current reading."""
        return self._clock()


def _lane_order(spans: Sequence[Span]) -> List[str]:
    """Lanes in display order: main first, then sorted worker lanes."""
    lanes = {span.lane for span in spans}
    ordered = []
    if MAIN_LANE in lanes:
        ordered.append(MAIN_LANE)
        lanes.discard(MAIN_LANE)
    ordered.extend(sorted(lanes))
    return ordered


def chrome_trace(spans: Sequence[Span]) -> Dict[str, object]:
    """Spans (any mix of lanes) -> Chrome trace-event JSON object.

    Timestamps are re-based to the earliest span start, converted to
    microseconds.  Each lane becomes one named thread (``tid``) of a
    single process; open spans (``end is None`` that are not instant
    events recorded via :meth:`Tracer.event`) are exported as instants.
    """
    events: List[Dict[str, object]] = []
    lanes = _lane_order(spans)
    tids = {lane: tid for tid, lane in enumerate(lanes)}
    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "repro"},
        }
    )
    for lane, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": lane},
            }
        )
    if spans:
        epoch = min(span.start for span in spans)
        for span in spans:
            ts = (span.start - epoch) * 1e6
            args = {
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                **span.args,
            }
            base = {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "pid": 0,
                "tid": tids[span.lane],
                "ts": ts,
                "args": args,
            }
            if span.end is None:
                events.append({**base, "ph": "i", "s": "t"})
            else:
                events.append(
                    {**base, "ph": "X", "dur": (span.end - span.start) * 1e6}
                )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: Union[str, Path], spans: Sequence[Span]
) -> Path:
    """Write spans as a Chrome-trace JSON file and return its path."""
    path = Path(path)
    path.write_text(
        json.dumps(chrome_trace(spans), indent=1) + "\n", encoding="utf-8"
    )
    return path
