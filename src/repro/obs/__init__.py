"""Zero-dependency observability: spans, metrics, merged timelines.

Three pieces, one facade:

* :mod:`repro.obs.trace` -- hierarchical spans with deterministic ids,
  an injectable clock, and a Chrome-trace-event exporter (loadable in
  ``chrome://tracing`` / Perfetto);
* :mod:`repro.obs.metrics` -- a registry of counters, gauges, and
  fixed-bucket histograms with snapshot/diff/merge semantics;
* :mod:`repro.obs.recorder` -- the process-local :func:`recorder`
  facade instrumented code reads.  The default is a shared no-op, so
  the hot path pays ~nothing when observability is off; pool workers
  record locally and the parent merges their snapshots into one
  timeline with per-worker lanes.

Turn it on with :func:`observed` (or the CLI's ``--trace`` /
``--metrics`` flags) and summarise with ``repro obs summary``.  See
``docs/observability.md``.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
)
from repro.obs.recorder import (
    NULL,
    NullRecorder,
    Recorder,
    RecorderSnapshot,
    observed,
    recorder,
    set_recorder,
)
from repro.obs.summary import (
    StageSummary,
    spans_from_chrome_trace,
    summarize_spans,
    summary_table,
)
from repro.obs.trace import (
    MAIN_LANE,
    Span,
    Tracer,
    chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "diff_snapshots",
    "NULL",
    "NullRecorder",
    "Recorder",
    "RecorderSnapshot",
    "observed",
    "recorder",
    "set_recorder",
    "StageSummary",
    "spans_from_chrome_trace",
    "summarize_spans",
    "summary_table",
    "MAIN_LANE",
    "Span",
    "Tracer",
    "chrome_trace",
    "write_chrome_trace",
]
