"""Per-stage summaries of recorded traces (``repro obs summary``).

Works from either a live :class:`~repro.obs.recorder.Recorder` (its
spans) or a Chrome-trace JSON file written earlier with ``--trace``:
spans are grouped by name into *stages*, and each stage reports its
call count, total/mean wall time and p50/p95/p99 span durations --
per-customer decision latency lands in the ``stream.decision`` /
``broker.decision`` rows.

Percentiles use NumPy's default linear interpolation over the exact
recorded durations (traces keep every span, so no bucketing error).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Union

import numpy as np

from repro.obs.trace import Span


@dataclass(frozen=True)
class StageSummary:
    """Aggregate statistics of one span name.

    Attributes:
        name: Span/stage name.
        count: Number of recorded spans (instant events excluded).
        total: Summed duration in seconds.
        mean: Mean duration.
        p50: Median duration.
        p95: 95th-percentile duration.
        p99: 99th-percentile duration.
        lanes: Distinct lanes that recorded the stage.
    """

    name: str
    count: int
    total: float
    mean: float
    p50: float
    p95: float
    p99: float
    lanes: int


def spans_from_chrome_trace(path: Union[str, Path]) -> List[Span]:
    """Re-read the spans of a ``--trace`` Chrome-trace JSON file.

    Only complete (``"X"``) events carry durations; instants are
    returned with ``end=None``.  Lane names are recovered from the
    ``thread_name`` metadata events.
    """
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    events = data.get("traceEvents", data if isinstance(data, list) else [])
    lane_names: Dict[int, str] = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            lane_names[int(event.get("tid", 0))] = event["args"]["name"]
    spans: List[Span] = []
    for event in events:
        ph = event.get("ph")
        if ph not in ("X", "i"):
            continue
        args = dict(event.get("args", {}))
        start = float(event.get("ts", 0.0)) / 1e6
        duration = float(event.get("dur", 0.0)) / 1e6 if ph == "X" else None
        spans.append(
            Span(
                name=event["name"],
                span_id=str(args.pop("span_id", "")),
                parent_id=args.pop("parent_id", None),
                start=start,
                end=None if duration is None else start + duration,
                lane=lane_names.get(int(event.get("tid", 0)), "main"),
                args=args,
            )
        )
    return spans


def summarize_spans(spans: Sequence[Span]) -> List[StageSummary]:
    """Group spans by name, most total time first (ties by name)."""
    groups: Dict[str, List[Span]] = {}
    for span in spans:
        if span.end is None:
            continue
        groups.setdefault(span.name, []).append(span)
    summaries: List[StageSummary] = []
    for name, members in groups.items():
        durations = np.array([span.duration for span in members])
        summaries.append(
            StageSummary(
                name=name,
                count=len(members),
                total=float(durations.sum()),
                mean=float(durations.mean()),
                p50=float(np.quantile(durations, 0.50)),
                p95=float(np.quantile(durations, 0.95)),
                p99=float(np.quantile(durations, 0.99)),
                lanes=len({span.lane for span in members}),
            )
        )
    summaries.sort(key=lambda s: (-s.total, s.name))
    return summaries


def breaker_transition_counts(
    spans: Sequence[Span],
) -> Dict[str, Dict[str, int]]:
    """Per-dependency breaker transitions found on a timeline.

    Counts the ``resilience.breaker_transition`` instant events by
    dependency and target state -- the trace-side twin of
    :attr:`~repro.stream.simulator.ResilienceStats.breaker_counts`.
    """
    counts: Dict[str, Dict[str, int]] = {}
    for span in spans:
        if span.name != "resilience.breaker_transition":
            continue
        dep = str(span.args.get("dependency", "?"))
        to_state = str(span.args.get("to_state", "?"))
        per = counts.setdefault(dep, {})
        per[to_state] = per.get(to_state, 0) + 1
    return counts


def _fmt(seconds: float) -> str:
    """Human-scale seconds (ms/us below 1s)."""
    if seconds >= 1.0:
        return f"{seconds:9.3f}s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:9.3f}ms"
    return f"{seconds * 1e6:9.1f}us"


def summary_table(spans: Sequence[Span]) -> str:
    """A printable per-stage time/percentile table.

    When the timeline carries circuit-breaker transition events, a
    per-dependency breaker section follows the stage table.
    """
    summaries = summarize_spans(spans)
    breakers = breaker_transition_counts(spans)
    if not summaries:
        if breakers:
            return "\n".join(_breaker_lines(breakers))
        return "(trace contains no closed spans)"
    lanes = len({span.lane for span in spans})
    width = max(len(s.name) for s in summaries)
    width = max(width, len("stage"))
    header = (
        f"{'stage':{width}s} {'count':>7s} {'lanes':>5s} {'total':>10s} "
        f"{'mean':>10s} {'p50':>10s} {'p95':>10s} {'p99':>10s}"
    )
    lines = [f"trace: {len(spans)} spans across {lanes} lane(s)", header,
             "-" * len(header)]
    for s in summaries:
        lines.append(
            f"{s.name:{width}s} {s.count:7d} {s.lanes:5d} "
            f"{_fmt(s.total)} {_fmt(s.mean)} {_fmt(s.p50)} "
            f"{_fmt(s.p95)} {_fmt(s.p99)}"
        )
    if breakers:
        lines.append("")
        lines.extend(_breaker_lines(breakers))
    return "\n".join(lines)


def _breaker_lines(counts: Dict[str, Dict[str, int]]) -> List[str]:
    lines = ["breaker transitions (into state):"]
    for dep in sorted(counts):
        detail = "  ".join(
            f"{state}={counts[dep][state]}"
            for state in ("open", "half_open", "closed")
            if state in counts[dep]
        )
        lines.append(f"  {dep}: {detail}")
    return lines
