"""The process-local recorder facade the instrumented code talks to.

Instrumentation sites never construct tracers or registries; they call
:func:`recorder` and use whatever is installed::

    rec = recorder()
    with rec.span("recon.vendor_mckp"):
        ...
    rec.count("stream.budget_commits")

By default the installed recorder is :data:`NULL` -- a shared no-op
whose ``span`` returns one reusable empty context manager -- so
instrumented code pays a dictionary-read and a function call when
observability is off, nothing more.  Enabling observability is one
call (:func:`set_recorder` with a real :class:`Recorder`, or the
:func:`observed` context manager); nothing else changes.

Worker processes record into their own local :class:`Recorder`
(installed by the pool layer) and ship :class:`RecorderSnapshot`
values -- plain picklable data -- back with their results; the parent's
:meth:`Recorder.merge` folds them into one timeline with per-worker
lanes.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Union

from repro.obs.metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    diff_snapshots,
)
from repro.obs.trace import (
    MAIN_LANE,
    Span,
    Tracer,
    chrome_trace,
    write_chrome_trace,
)


class _NullSpan:
    """The reusable do-nothing context manager of the null recorder."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The no-op recorder: every call returns immediately.

    ``enabled`` is ``False`` so code with per-item instrumentation in a
    genuinely hot loop can skip even the no-op call; everything else
    just calls through unconditionally.
    """

    enabled = False
    lane = MAIN_LANE

    def span(self, name: str, **args: object) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **args: object) -> None:
        return None

    def count(self, name: str, amount: float = 1.0) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def observe(
        self,
        name: str,
        value: float,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        return None

    def now(self) -> float:
        return 0.0


#: The module-wide shared no-op instance.
NULL = NullRecorder()


@dataclass
class RecorderSnapshot:
    """Plain-data recording of one process (picklable across pools).

    Attributes:
        lane: Recording process's lane name.
        spans: Spans recorded (raw clock readings; on supported
            platforms ``perf_counter`` is system-wide monotonic, so
            readings from different processes share an origin).
        metrics: Metrics state (or delta, when drained) as plain dicts.
    """

    lane: str
    spans: List[Span] = field(default_factory=list)
    metrics: MetricsSnapshot = field(default_factory=dict)


class Recorder:
    """An enabled recorder: tracer + metrics registry + merge.

    Args:
        clock: Monotonic-seconds callable shared by the tracer;
            defaults to ``time.perf_counter``.  Any
            :mod:`repro.resilience.clock` clock works.
        lane: This process's lane name (``"main"`` in the parent,
            ``"worker-<pid>"`` in pool workers).
    """

    enabled = True

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        lane: str = MAIN_LANE,
    ) -> None:
        self.lane = lane
        self.tracer = Tracer(clock=clock, lane=lane)
        self.metrics = MetricsRegistry()
        #: Spans merged in from other lanes (workers).
        self.foreign_spans: List[Span] = []
        self._drained_spans = 0
        self._drained_metrics: MetricsSnapshot = self.metrics.snapshot()

    # -- recording ------------------------------------------------------
    def span(self, name: str, **args: object):
        """Open a named span (context manager)."""
        return self.tracer.span(name, **args)

    def event(self, name: str, **args: object) -> Span:
        """Record an instant event on the timeline."""
        return self.tracer.event(name, **args)

    def count(self, name: str, amount: float = 1.0) -> None:
        """Increment the named counter."""
        self.metrics.counter(name).inc(amount)

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge."""
        self.metrics.gauge(name).set(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        """Record one observation into the named histogram.

        ``buckets`` overrides the default latency bounds *on creation*
        (first observation wins; later calls reuse the existing
        histogram) -- used for non-latency histograms such as the
        serving layer's batch-size distribution.
        """
        self.metrics.histogram(name, buckets=buckets).observe(value)

    def now(self) -> float:
        """The recorder clock's current reading."""
        return self.tracer.now()

    # -- snapshots and merging -----------------------------------------
    @property
    def all_spans(self) -> List[Span]:
        """Own spans plus everything merged from worker lanes."""
        return list(self.tracer.spans) + list(self.foreign_spans)

    def snapshot(self) -> RecorderSnapshot:
        """The full recording (own lane only) as plain data."""
        return RecorderSnapshot(
            lane=self.lane,
            spans=list(self.tracer.spans),
            metrics=self.metrics.snapshot(),
        )

    def drain(self) -> RecorderSnapshot:
        """Spans and metric increments since the previous drain.

        The worker-side per-task shipping primitive: each task returns
        only what it added, so the parent can merge task results in
        order without double counting.
        """
        spans = self.tracer.spans[self._drained_spans:]
        self._drained_spans = len(self.tracer.spans)
        current = self.metrics.snapshot()
        delta = diff_snapshots(current, self._drained_metrics)
        self._drained_metrics = current
        return RecorderSnapshot(
            lane=self.lane, spans=list(spans), metrics=delta
        )

    def merge(
        self, snapshot: RecorderSnapshot, offset: float = 0.0
    ) -> None:
        """Fold a child recording into this one.

        Spans keep the snapshot's lane (a distinct timeline row in the
        exported trace); ``offset`` seconds are added to their clock
        readings for clocks that do *not* share an origin across
        processes (simulated clocks).  Metrics merge per
        :meth:`repro.obs.metrics.MetricsRegistry.merge`.
        """
        for span in snapshot.spans:
            if offset:
                span = Span(
                    name=span.name,
                    span_id=span.span_id,
                    parent_id=span.parent_id,
                    start=span.start + offset,
                    end=None if span.end is None else span.end + offset,
                    lane=span.lane,
                    args=span.args,
                )
            self.foreign_spans.append(span)
        if snapshot.metrics:
            self.metrics.merge(snapshot.metrics)

    # -- export ---------------------------------------------------------
    def chrome_trace(self) -> Dict[str, object]:
        """The merged timeline as a Chrome trace-event object."""
        return chrome_trace(self.all_spans)

    def write_trace(self, path: Union[str, Path]) -> Path:
        """Write the merged timeline as Chrome-trace JSON."""
        return write_chrome_trace(path, self.all_spans)

    def write_metrics(self, path: Union[str, Path]) -> Path:
        """Write the metrics snapshot as JSON and return the path."""
        path = Path(path)
        path.write_text(
            json.dumps(self.metrics.snapshot(), indent=2) + "\n",
            encoding="utf-8",
        )
        return path


#: The process-local active recorder read by every instrumentation site.
_ACTIVE: Union[Recorder, NullRecorder] = NULL


def recorder() -> Union[Recorder, NullRecorder]:
    """The currently installed recorder (the shared no-op by default)."""
    return _ACTIVE


def set_recorder(
    rec: Union[Recorder, NullRecorder]
) -> Union[Recorder, NullRecorder]:
    """Install ``rec`` as the process-local recorder; returns the old one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = rec
    return previous


@contextmanager
def observed(
    clock: Optional[Callable[[], float]] = None, lane: str = MAIN_LANE
) -> Iterator[Recorder]:
    """Scope with a fresh enabled :class:`Recorder` installed.

    Restores the previous recorder on exit, so nesting and tests stay
    hermetic::

        with observed() as rec:
            Reconciliation(jobs=4).solve(problem)
        rec.write_trace("trace.json")
    """
    rec = Recorder(clock=clock, lane=lane)
    previous = set_recorder(rec)
    try:
        yield rec
    finally:
        set_recorder(previous)
