"""Vendor opening hours: the vendor set :math:`V_\\varphi` over time.

Definition 2 parameterises the vendor set by the timestamp; a teahouse
does not want lunch-hour ads while closed.  :class:`VendorSchedule`
models daily opening windows (midnight wrap supported) and
:func:`open_vendors` filters a vendor population at a timestamp --
plugged into :class:`~repro.temporal.snapshots.TemporalWorld` so each
snapshot only contains vendors that are actually open.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.entities import Vendor

_DAY = 24.0


@dataclass(frozen=True)
class VendorSchedule:
    """A daily opening window ``[open_hour, close_hour)``.

    A window wrapping midnight (``open_hour > close_hour``, e.g. a bar
    open 18-02) is supported; ``open_hour == close_hour`` means open
    around the clock.

    Raises:
        ValueError: On hours outside ``[0, 24)``.
    """

    open_hour: float
    close_hour: float

    def __post_init__(self) -> None:
        for hour in (self.open_hour, self.close_hour):
            if not 0 <= hour < _DAY:
                raise ValueError(f"hours must be in [0, 24), got {hour}")

    def is_open(self, hour: float) -> bool:
        """Whether the vendor is open at ``hour`` (taken mod 24)."""
        hour = hour % _DAY
        if self.open_hour == self.close_hour:
            return True
        if self.open_hour < self.close_hour:
            return self.open_hour <= hour < self.close_hour
        return hour >= self.open_hour or hour < self.close_hour

    @property
    def hours_open(self) -> float:
        """Length of the daily window in hours."""
        if self.open_hour == self.close_hour:
            return _DAY
        return (self.close_hour - self.open_hour) % _DAY


#: Always-open schedule.
ALWAYS_OPEN = VendorSchedule(open_hour=0.0, close_hour=0.0)


def open_vendors(
    vendors: Sequence[Vendor],
    schedules: Optional[Dict[int, VendorSchedule]],
    hour: float,
) -> List[Vendor]:
    """Vendors open at ``hour``; unscheduled vendors count as open."""
    if not schedules:
        return list(vendors)
    return [
        vendor
        for vendor in vendors
        if schedules.get(vendor.vendor_id, ALWAYS_OPEN).is_open(hour)
    ]
