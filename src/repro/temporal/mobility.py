"""Customer mobility: random-waypoint trajectories.

Section II models customers as *moving* -- their locations change over
time, so the set of valid vendors of a customer changes too.  The
random-waypoint model is the standard synthetic mobility model: each
customer repeatedly picks a uniform random waypoint in the unit square
and walks toward it at its own speed.

:class:`Trajectory` gives O(1) position lookup at any time via
precomputed waypoint arrival times.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.spatial.geometry import Point, euclidean


@dataclass(frozen=True)
class Trajectory:
    """A piecewise-linear path through waypoints.

    Attributes:
        waypoints: Visited points, in order (at least one).
        times: Arrival time at each waypoint; strictly increasing,
            same length as ``waypoints``.
    """

    waypoints: Tuple[Point, ...]
    times: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.waypoints) != len(self.times) or not self.waypoints:
            raise ValueError("waypoints and times must align and be non-empty")
        for earlier, later in zip(self.times, self.times[1:]):
            if later <= earlier:
                raise ValueError("waypoint times must strictly increase")

    @property
    def start_time(self) -> float:
        """Time of the first waypoint."""
        return self.times[0]

    @property
    def end_time(self) -> float:
        """Time of the last waypoint."""
        return self.times[-1]

    def position(self, time: float) -> Point:
        """Position at ``time`` (clamped to the trajectory's span)."""
        if time <= self.times[0]:
            return self.waypoints[0]
        if time >= self.times[-1]:
            return self.waypoints[-1]
        index = bisect.bisect_right(self.times, time) - 1
        t0, t1 = self.times[index], self.times[index + 1]
        (x0, y0), (x1, y1) = self.waypoints[index], self.waypoints[index + 1]
        fraction = (time - t0) / (t1 - t0)
        return (x0 + fraction * (x1 - x0), y0 + fraction * (y1 - y0))

    def displacement_since(self, time: float, now: float) -> float:
        """Straight-line distance between the positions at two times."""
        return euclidean(self.position(time), self.position(now))


def random_waypoint_trajectory(
    rng: np.random.Generator,
    start: Optional[Point] = None,
    speed: float = 0.05,
    duration: float = 24.0,
    start_time: float = 0.0,
) -> Trajectory:
    """A random-waypoint trajectory in the unit square.

    Args:
        rng: Randomness source.
        start: Initial position (uniform random when omitted).
        speed: Distance per hour.
        duration: Hours covered.
        start_time: Time of the first waypoint.

    Raises:
        ValueError: On non-positive speed or duration.
    """
    if speed <= 0:
        raise ValueError(f"speed must be positive, got {speed}")
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    position = start if start is not None else (
        float(rng.uniform()), float(rng.uniform())
    )
    waypoints: List[Point] = [position]
    times: List[float] = [start_time]
    now = start_time
    while now < start_time + duration:
        target = (float(rng.uniform()), float(rng.uniform()))
        leg = euclidean(waypoints[-1], target)
        if leg <= 1e-12:
            continue
        now += leg / speed
        waypoints.append(target)
        times.append(now)
    return Trajectory(waypoints=tuple(waypoints), times=tuple(times))


def trajectories_for(
    n_customers: int,
    seed: int = 0,
    speed_range: Tuple[float, float] = (0.02, 0.1),
    duration: float = 24.0,
    starts: Optional[Sequence[Point]] = None,
) -> List[Trajectory]:
    """Independent random-waypoint trajectories for a population."""
    rng = np.random.default_rng(seed)
    trajectories = []
    for index in range(n_customers):
        start = starts[index] if starts is not None else None
        speed = float(rng.uniform(*speed_range))
        trajectories.append(
            random_waypoint_trajectory(
                rng, start=start, speed=speed, duration=duration
            )
        )
    return trajectories
