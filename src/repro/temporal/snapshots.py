"""Temporal snapshots: a MUAA instance at any timestamp of a moving world.

The paper's problem is defined over :math:`U_\\varphi` / :math:`V_\\varphi`
-- the customer and vendor sets *at a timestamp*.  :class:`TemporalWorld`
holds the static part (vendors, ad types, taxonomy activity) plus the
customers' trajectories, and materialises a standard
:class:`~repro.core.problem.MUAAProblem` for any time.  Each snapshot
gets a fresh utility model, because cached pair bases depend on
positions that change between snapshots.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.core.entities import AdType, Customer, Vendor
from repro.core.problem import MUAAProblem
from repro.temporal.mobility import Trajectory
from repro.temporal.windows import VendorSchedule, open_vendors
from repro.utility.activity import ActivityModel
from repro.utility.model import TaxonomyUtilityModel


def snapshot_customers(
    customers: Sequence[Customer],
    trajectories: Sequence[Trajectory],
    time: float,
) -> List[Customer]:
    """The customer set at ``time``: positions from the trajectories.

    Args:
        customers: Base customer attributes (capacity, probability,
            interests).
        trajectories: One trajectory per customer, aligned by index.
        time: The snapshot timestamp (hours).

    Raises:
        ValueError: If the two sequences are misaligned.
    """
    if len(customers) != len(trajectories):
        raise ValueError(
            f"{len(customers)} customers but {len(trajectories)} trajectories"
        )
    return [
        dataclasses.replace(
            customer,
            location=trajectory.position(time),
            arrival_time=time % 24.0,
        )
        for customer, trajectory in zip(customers, trajectories)
    ]


class TemporalWorld:
    """A moving-customer world that can be frozen at any timestamp.

    Args:
        customers: Base customers (their locations are ignored; the
            trajectories govern positions).
        trajectories: One per customer, aligned by index.
        vendors: Static vendors.
        ad_types: The ad catalogue.
        activity_model: Tag activity driving Eq. 5 at each snapshot.
        schedules: Optional vendor opening hours; vendors without a
            schedule are treated as always open.
    """

    def __init__(
        self,
        customers: Sequence[Customer],
        trajectories: Sequence[Trajectory],
        vendors: Sequence[Vendor],
        ad_types: Sequence[AdType],
        activity_model: ActivityModel,
        schedules: Optional[Dict[int, VendorSchedule]] = None,
    ) -> None:
        if len(customers) != len(trajectories):
            raise ValueError(
                f"{len(customers)} customers but "
                f"{len(trajectories)} trajectories"
            )
        self.customers = list(customers)
        self.trajectories = list(trajectories)
        self.vendors = list(vendors)
        self.ad_types = list(ad_types)
        self.activity_model = activity_model
        self.schedules = dict(schedules) if schedules else None

    def problem_at(self, time: float) -> MUAAProblem:
        """Materialise the MUAA instance :math:`\\mathbb{M}_\\varphi`
        (only vendors open at ``time`` participate)."""
        return MUAAProblem(
            customers=snapshot_customers(
                self.customers, self.trajectories, time
            ),
            vendors=open_vendors(self.vendors, self.schedules, time),
            ad_types=self.ad_types,
            utility_model=TaxonomyUtilityModel(self.activity_model),
        )

    def solve_over_day(
        self,
        algorithm_factory,
        times: Optional[Sequence[float]] = None,
    ):
        """Solve a snapshot per timestamp and collect the results.

        Args:
            algorithm_factory: Zero-argument callable building a fresh
                offline algorithm per snapshot (budgets reset between
                snapshots -- each timestamp is its own MUAA instance,
                as in Definition 5).
            times: Snapshot timestamps; hourly by default.

        Returns:
            ``[(time, SolveResult), ...]`` in time order.
        """
        if times is None:
            times = [float(h) for h in range(24)]
        results = []
        for time in times:
            problem = self.problem_at(time)
            results.append((time, algorithm_factory().run(problem)))
        return results
