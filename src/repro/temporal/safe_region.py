"""Conservative safe regions for continuous valid-vendor queries.

The paper builds on CALBA (Xu et al. [26]), which tracks a
*conservative safe region* per moving customer: a disc around the
position at which the valid-vendor set was last computed, sized so that
no vendor can enter or leave the set while the customer stays inside.
Queries inside the region are answered from cache; only crossing the
boundary triggers a recomputation.  The paper uses this as the
subroutine that keeps "which vendors can reach this customer" cheap
under motion.

The safe radius after a recomputation at position :math:`p` is

.. math:: s(p) = \\min_j \\bigl| d(p, l_{v_j}) - r_j \\bigr|

since an in-range vendor :math:`v_j` stays in range while the customer
moves less than :math:`r_j - d`, and an out-of-range one stays out
while it moves less than :math:`d - r_j`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.entities import Vendor
from repro.spatial.geometry import Point, euclidean


@dataclass
class SafeRegionStats:
    """Counters showing how much work safe regions saved.

    Attributes:
        queries: Total valid-vendor queries answered.
        recomputations: Queries that crossed the safe boundary and paid
            the full scan.
    """

    queries: int = 0
    recomputations: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of queries answered from the cached region."""
        if self.queries == 0:
            return 0.0
        return 1.0 - self.recomputations / self.queries


@dataclass
class _RegionState:
    anchor: Point
    safe_radius: float
    valid: Tuple[int, ...]


class SafeRegionTracker:
    """Tracks valid-vendor sets of moving customers with safe regions.

    Args:
        vendors: The static vendor population.

    Example:
        >>> tracker = SafeRegionTracker(vendors)
        >>> valid = tracker.valid_vendors(customer_id=3, position=(x, y))
    """

    def __init__(self, vendors: Sequence[Vendor]) -> None:
        self._vendors = list(vendors)
        self._state: Dict[int, _RegionState] = {}
        #: Work counters (shared across customers).
        self.stats = SafeRegionStats()

    def _recompute(self, position: Point) -> _RegionState:
        valid: List[int] = []
        safe = float("inf")
        for vendor in self._vendors:
            gap = euclidean(position, vendor.location) - vendor.radius
            if gap <= 0:
                valid.append(vendor.vendor_id)
            safe = min(safe, abs(gap))
        if not self._vendors:
            safe = float("inf")
        return _RegionState(
            anchor=position, safe_radius=safe, valid=tuple(valid)
        )

    def valid_vendors(self, customer_id: int, position: Point) -> Tuple[int, ...]:
        """Vendor ids whose area contains the customer at ``position``.

        Exact: identical to a from-scratch scan at every call, but paid
        only when the customer has left its cached safe region.
        """
        self.stats.queries += 1
        state = self._state.get(customer_id)
        if (
            state is not None
            and euclidean(state.anchor, position) < state.safe_radius
        ):
            return state.valid
        self.stats.recomputations += 1
        state = self._recompute(position)
        self._state[customer_id] = state
        return state.valid

    def invalidate(self, customer_id: int) -> None:
        """Drop the cached region of one customer (e.g. vendor churn)."""
        self._state.pop(customer_id, None)

    def invalidate_all(self) -> None:
        """Drop every cached region (after any vendor change)."""
        self._state.clear()


def brute_force_valid_vendors(
    vendors: Sequence[Vendor], position: Point
) -> Tuple[int, ...]:
    """Reference implementation: full scan (for tests and benchmarks)."""
    return tuple(
        v.vendor_id
        for v in vendors
        if euclidean(position, v.location) <= v.radius
    )
