"""Temporal substrate: mobility, safe regions, and timestamp snapshots."""

from repro.temporal.mobility import (
    Trajectory,
    random_waypoint_trajectory,
    trajectories_for,
)
from repro.temporal.safe_region import (
    SafeRegionStats,
    SafeRegionTracker,
    brute_force_valid_vendors,
)
from repro.temporal.snapshots import TemporalWorld, snapshot_customers
from repro.temporal.windows import ALWAYS_OPEN, VendorSchedule, open_vendors

__all__ = [
    "ALWAYS_OPEN",
    "VendorSchedule",
    "open_vendors",
    "Trajectory",
    "random_waypoint_trajectory",
    "trajectories_for",
    "SafeRegionStats",
    "SafeRegionTracker",
    "brute_force_valid_vendors",
    "TemporalWorld",
    "snapshot_customers",
]
