"""Per-stream seed derivation shared by every seeded event source.

Long-running episodes draw randomness for several independent concerns
at once -- vendor churn, customer trajectory moves, diurnal arrival
resampling, chaos plans.  Each concern must own a *dedicated* RNG
stream derived from the one user-facing seed, so that enabling or
re-ordering one concern can never shift another's draws (enabling a
scenario must not change which vendors churn).

The derivation is the ``random.Random(f"{seed}:{stream}")`` idiom that
:func:`repro.churn.seeded_vendor_churn` and
:class:`repro.cluster.chaos.ChaosPlan` established; this module is the
single place it lives so every consumer names its stream instead of
re-inventing the string format.  ``stream_rng(seed, "churn")`` is
draw-for-draw identical to the historical inline construction, which
is what the cross-seed regression tests pin.
"""

from __future__ import annotations

import hashlib
import random

import numpy as np

__all__ = ["stream_key", "stream_rng", "stream_numpy_rng", "stream_seed"]


def stream_key(seed: int, stream: str) -> str:
    """The canonical key of one ``(seed, stream)`` RNG stream."""
    return f"{seed}:{stream}"


def stream_rng(seed: int, stream: str) -> random.Random:
    """A dedicated stdlib RNG for one named stream of a seed.

    ``stream_rng(seed, "churn")`` reproduces the draws of the
    historical ``random.Random(f"{seed}:churn")`` construction exactly.
    """
    return random.Random(stream_key(seed, stream))


def stream_seed(seed: int, stream: str) -> int:
    """A stable 64-bit integer seed for one named stream.

    Derived by hashing the stream key (SHA-256, not ``hash()``, so the
    value is independent of ``PYTHONHASHSEED`` and stable across
    processes and Python versions).
    """
    digest = hashlib.sha256(stream_key(seed, stream).encode()).digest()
    return int.from_bytes(digest[:8], "little")


def stream_numpy_rng(seed: int, stream: str) -> np.random.Generator:
    """A dedicated NumPy generator for one named stream of a seed."""
    return np.random.default_rng(stream_seed(seed, stream))
