"""repro: a full reproduction of "Maximizing the Utility in Location-Based
Mobile Advertising" (Cheng, Lian, Chen, Liu -- ICDE 2019).

The package implements the Maximum Utility Ad Assignment (MUAA) problem
end to end:

* the entity and utility model of Section II (taxonomy-driven interest
  vectors, activity-weighted Pearson preference, Eq. 4 utilities);
* the offline reconciliation algorithm RECON (Section III) on top of an
  in-tree multiple-choice-knapsack / LP substrate;
* the online adaptive factor-aware algorithm O-AFA (Section IV) with its
  exponential threshold and parameter calibration;
* every baseline of Section V (RANDOM, NEAREST, GREEDY) plus an exact
  solver for small instances; and
* the full experiment harness regenerating Figures 3-8.

Quickstart::

    from repro import synthetic_problem, run_panel
    problem = synthetic_problem()
    results = run_panel(problem)
    print(results["RECON"].total_utility)
"""

from repro.algorithms import (
    AdaptiveExponentialThreshold,
    ExactOptimal,
    GreedyEfficiency,
    NearestVendor,
    OnlineAdaptiveFactorAware,
    OnlineStaticThreshold,
    RandomAssignment,
    Reconciliation,
    calibrate_from_problem,
)
from repro.core import (
    AdInstance,
    AdType,
    Assignment,
    Customer,
    MUAAProblem,
    Vendor,
    validate_assignment,
)
from repro.datagen import (
    WorkloadConfig,
    default_ad_types,
    load_foursquare_tsv,
    problem_from_checkins,
    simulate_checkins,
    synthetic_problem,
)
from repro.experiments import run_panel, run_sweep
from repro.parallel import ParallelConfig
from repro.resilience import FaultPlan, ResilientBroker, SimulatedClock
from repro.sharding import ShardPlan
from repro.stream import OnlineSimulator
from repro.taxonomy import Taxonomy, foursquare_taxonomy
from repro.utility import TabularUtilityModel, TaxonomyUtilityModel

__version__ = "1.0.0"

__all__ = [
    "AdaptiveExponentialThreshold",
    "ExactOptimal",
    "GreedyEfficiency",
    "NearestVendor",
    "OnlineAdaptiveFactorAware",
    "OnlineStaticThreshold",
    "RandomAssignment",
    "Reconciliation",
    "calibrate_from_problem",
    "AdInstance",
    "AdType",
    "Assignment",
    "Customer",
    "MUAAProblem",
    "Vendor",
    "validate_assignment",
    "WorkloadConfig",
    "default_ad_types",
    "load_foursquare_tsv",
    "problem_from_checkins",
    "simulate_checkins",
    "synthetic_problem",
    "run_panel",
    "run_sweep",
    "FaultPlan",
    "ResilientBroker",
    "SimulatedClock",
    "ShardPlan",
    "OnlineSimulator",
    "Taxonomy",
    "foursquare_taxonomy",
    "TabularUtilityModel",
    "TaxonomyUtilityModel",
    "__version__",
]
