"""Injectable clocks for the resilient serving layer.

Every time-dependent piece of the resilience machinery (retry backoff,
circuit-breaker recovery, per-call timeouts, decision deadlines) reads
time through one of these clocks instead of the ``time`` module, so
tests and chaos runs are fully deterministic: a
:class:`SimulatedClock` only moves when something *advances* it, and
"sleeping" on it is instantaneous in wall-clock terms.

Both clocks are callables returning monotonic seconds, so anything that
accepts ``time.perf_counter`` (e.g.
:class:`~repro.stream.simulator.OnlineSimulator`) accepts them too.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """The clock protocol every time-dependent layer codes against.

    A clock is a zero-argument callable returning monotonic seconds
    (``now()`` and ``__call__`` agree) that can also ``sleep``.  The
    resilience guards, the streaming simulator, and the serving
    front-end (:mod:`repro.serve`) all take any object satisfying this
    protocol, so a single :class:`SimulatedClock` can freeze a whole
    stack for a deterministic test.  Never call ``time.monotonic()`` /
    ``time.perf_counter()`` directly from queue, deadline, or backoff
    logic -- inject one of these.
    """

    def now(self) -> float: ...

    def __call__(self) -> float: ...

    def sleep(self, seconds: float) -> None: ...


class SystemClock:
    """Wall-clock time: ``now()`` is ``time.perf_counter`` and ``sleep``
    really sleeps.  The production default."""

    def now(self) -> float:
        """Monotonic wall-clock seconds."""
        return time.perf_counter()

    def __call__(self) -> float:
        return self.now()

    def sleep(self, seconds: float) -> None:
        """Block for ``seconds`` of real time."""
        if seconds > 0:
            time.sleep(seconds)


class SimulatedClock:
    """A manually advanced clock for deterministic tests and chaos runs.

    Args:
        start: Initial reading in seconds.

    The clock never moves on its own: :meth:`advance` (or :meth:`sleep`,
    which is an alias used by backoff code) pushes it forward, so a
    test asserting on retry timing or breaker recovery never has to
    actually wait.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        """The current simulated reading in seconds."""
        return self._now

    def __call__(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        """Move the clock forward; negative advances are rejected.

        Raises:
            ValueError: If ``seconds`` is negative (time is monotonic).
        """
        if seconds < 0:
            raise ValueError(f"cannot advance a clock by {seconds}")
        self._now += seconds

    def sleep(self, seconds: float) -> None:
        """Advance instead of sleeping (instantaneous in real time)."""
        if seconds > 0:
            self.advance(seconds)
