"""Deterministic, seeded fault injection for the serving layer.

The online model of Section IV assumes the utility model, the spatial
index and the assignment commit path all answer instantly and exactly
once.  A production broker gets none of that: dependencies throw,
lookups stall, acks get lost (so deliveries are retried and may
duplicate), and arrival streams are lossy and reordered.  This module
simulates all of those failure modes *deterministically*: a
:class:`FaultPlan` plus its seed fully determines every fault, so a
chaos run is exactly reproducible and every assertion about broker
behaviour under faults is stable in CI.

Fault decisions are drawn from independent per-dependency RNG streams
(seeded as ``"<seed>:<dependency>"``), so changing e.g. the commit
duplicate rate never shifts which utility calls fail.
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.entities import AdType, Customer, Vendor
from repro.exceptions import TransientError
from repro.utility.model import DelegatingUtilityModel, UtilityModel

logger = logging.getLogger(__name__)

#: Dependency names the injector knows about; the broker guards each.
DEPENDENCIES = ("utility", "spatial", "commit")


def _check_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability, got {value}")


@dataclass(frozen=True)
class FaultSpec:
    """Failure modes of one dependency.

    Attributes:
        transient_rate: Probability a call raises
            :class:`~repro.exceptions.TransientError` instead of
            answering.
        latency_spike_rate: Probability a call stalls (the injected
            clock is advanced by ``latency_spike_seconds``) before
            answering.
        latency_spike_seconds: Size of one stall.
        duplicate_rate: Commit path only -- probability the *ack* of a
            successful commit is lost, so the caller believes the
            delivery failed and retries it (the classic source of
            duplicate deliveries and double-charging).
    """

    transient_rate: float = 0.0
    latency_spike_rate: float = 0.0
    latency_spike_seconds: float = 0.0
    duplicate_rate: float = 0.0

    def __post_init__(self) -> None:
        _check_rate("transient_rate", self.transient_rate)
        _check_rate("latency_spike_rate", self.latency_spike_rate)
        _check_rate("duplicate_rate", self.duplicate_rate)
        if self.latency_spike_seconds < 0:
            raise ValueError("latency_spike_seconds must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded description of what goes wrong in one run.

    Attributes:
        seed: Determines every fault draw (together with the rates).
        utility: Fault spec of the utility-model dependency.
        spatial: Fault spec of the spatial-index dependency.
        commit: Fault spec of the assignment commit path.
        drop_rate: Probability an arriving customer is lost before the
            broker ever sees them (network drop upstream).
        reorder_rate: Probability an arriving customer is delayed and
            delivered a few positions late (out-of-order arrival).
    """

    seed: int = 0
    utility: FaultSpec = field(default_factory=FaultSpec)
    spatial: FaultSpec = field(default_factory=FaultSpec)
    commit: FaultSpec = field(default_factory=FaultSpec)
    drop_rate: float = 0.0
    reorder_rate: float = 0.0

    def __post_init__(self) -> None:
        _check_rate("drop_rate", self.drop_rate)
        _check_rate("reorder_rate", self.reorder_rate)

    @classmethod
    def uniform(
        cls,
        seed: int,
        transient_rate: float,
        latency_spike_rate: float = 0.0,
        latency_spike_seconds: float = 0.0,
        duplicate_rate: float = 0.0,
        drop_rate: float = 0.0,
        reorder_rate: float = 0.0,
    ) -> "FaultPlan":
        """A plan applying the same fault spec to every dependency."""
        spec = FaultSpec(
            transient_rate=transient_rate,
            latency_spike_rate=latency_spike_rate,
            latency_spike_seconds=latency_spike_seconds,
        )
        return cls(
            seed=seed,
            utility=spec,
            spatial=spec,
            commit=replace(spec, duplicate_rate=duplicate_rate),
            drop_rate=drop_rate,
            reorder_rate=reorder_rate,
        )

    def spec_for(self, dependency: str) -> FaultSpec:
        """The fault spec of one named dependency.

        Raises:
            KeyError: For unknown dependency names.
        """
        if dependency not in DEPENDENCIES:
            raise KeyError(f"unknown dependency {dependency!r}")
        return getattr(self, dependency)


class FaultInjector:
    """Draws faults from a plan, one independent stream per dependency.

    Args:
        plan: The seeded fault plan.
        clock: Optional clock with an ``advance`` method; latency
            spikes advance it (a :class:`SimulatedClock`).  Without a
            clock, spikes are counted but cost no time.
    """

    def __init__(self, plan: FaultPlan, clock=None) -> None:
        self.plan = plan
        self._clock = clock
        # Seeding with a string keys the stream off (seed, dependency)
        # stably across runs and Python versions.
        self._rngs: Dict[str, random.Random] = {
            dep: random.Random(f"{plan.seed}:{dep}") for dep in DEPENDENCIES
        }
        #: ``(dependency, kind)`` -> number of injected faults.
        self.counts: Dict[Tuple[str, str], int] = {}

    def _record(self, dependency: str, kind: str) -> None:
        key = (dependency, kind)
        self.counts[key] = self.counts.get(key, 0) + 1

    @property
    def total_faults(self) -> int:
        """Total faults injected so far, all kinds and dependencies."""
        return sum(self.counts.values())

    def before_call(self, dependency: str) -> None:
        """Fault gate in front of one dependency call.

        May advance the clock (latency spike) and/or raise
        :class:`TransientError`; called once per *attempt*, so retries
        re-roll the dice -- exactly like re-issuing a real RPC.
        """
        spec = self.plan.spec_for(dependency)
        rng = self._rngs[dependency]
        if spec.latency_spike_rate and rng.random() < spec.latency_spike_rate:
            self._record(dependency, "latency_spike")
            if self._clock is not None and hasattr(self._clock, "advance"):
                self._clock.advance(spec.latency_spike_seconds)
        if spec.transient_rate and rng.random() < spec.transient_rate:
            self._record(dependency, "transient")
            logger.debug("injected transient fault on %s", dependency)
            raise TransientError(f"injected transient fault on {dependency}")

    def ack_lost(self) -> bool:
        """Whether a successful commit's acknowledgement is lost.

        A lost ack makes the broker re-attempt the delivery; an
        idempotent commit path must suppress the duplicate rather than
        double-charge the vendor.
        """
        spec = self.plan.commit
        if spec.duplicate_rate and self._rngs["commit"].random() < spec.duplicate_rate:
            self._record("commit", "ack_lost")
            logger.debug("injected lost commit ack (duplicate delivery)")
            return True
        return False


class FaultyUtilityModel(DelegatingUtilityModel):
    """A utility model whose calls pass through a fault injector.

    Values are never corrupted -- the model either answers exactly or
    fails loudly -- so any assignment actually committed remains
    consistent with the pristine model (and passes
    :func:`~repro.core.validation.validate_assignment`).
    """

    def __init__(self, inner: UtilityModel, injector: FaultInjector) -> None:
        super().__init__(inner)
        self._injector = injector

    def pair_base(self, customer: Customer, vendor: Vendor) -> float:
        self._injector.before_call("utility")
        return self.inner.pair_base(customer, vendor)

    def utility(
        self, customer: Customer, vendor: Vendor, ad_type: AdType
    ) -> float:
        if self.inner.type_sensitive:
            self._injector.before_call("utility")
            return self.inner.utility(customer, vendor, ad_type)
        # The default path multiplies pair_base (already gated above).
        return super().utility(customer, vendor, ad_type)


def perturb_arrivals(
    arrivals: Sequence[Customer],
    plan: FaultPlan,
    max_delay: int = 3,
) -> Tuple[List[Customer], int, int]:
    """Apply the plan's stream-level faults to an arrival sequence.

    Dropped customers vanish; reordered ones are delayed by a uniform
    1..``max_delay`` positions (bounded out-of-orderness, the common
    shape of real queueing jitter).  Deterministic in the plan seed.

    Returns:
        ``(perturbed_arrivals, n_dropped, n_reordered)``.
    """
    rng = random.Random(f"{plan.seed}:arrivals")
    kept: List[Customer] = []
    dropped = 0
    delayed: List[Tuple[int, Customer]] = []
    for position, customer in enumerate(arrivals):
        if plan.drop_rate and rng.random() < plan.drop_rate:
            dropped += 1
            continue
        if plan.reorder_rate and rng.random() < plan.reorder_rate:
            delayed.append((position + rng.randint(1, max_delay), customer))
            continue
        kept.append(customer)
    reordered = len(delayed)
    # Reinsert delayed customers at their (clamped) later positions, in
    # stable order so the result is reproducible.
    for target, customer in sorted(delayed, key=lambda item: item[0]):
        kept.insert(min(target, len(kept)), customer)
    if dropped or reordered:
        logger.debug(
            "perturbed arrivals: %d dropped, %d reordered", dropped, reordered
        )
    return kept, dropped, reordered
