"""The resilient online broker: O-AFA serving that survives its
dependencies.

:class:`ResilientBroker` is the hardened counterpart of
:class:`~repro.stream.simulator.OnlineSimulator`.  It drives the same
customer-at-a-time protocol, but every dependency of the decision path
is wrapped:

* the **utility model** and **spatial index** calls go through a
  :class:`~repro.resilience.policy.DependencyGuard` (retry with
  deterministic-jitter backoff, per-call timeout, circuit breaker) on
  top of seeded fault injection;
* decisions flow through a graceful-degradation
  :class:`~repro.algorithms.fallback.FallbackChain`
  (O-AFA -> static-threshold O-AFA -> nearest-vendor), so an open
  breaker degrades quality instead of availability;
* the **commit path** is idempotent: a delivery re-attempt caused by a
  lost acknowledgement is recognised and suppressed, so a vendor's
  budget is never charged twice for one ad.

The broker never raises out of :meth:`ResilientBroker.run`: when every
tier fails for a customer, that decision is abandoned (counted) and the
stream continues.  All counters land in
:class:`~repro.stream.simulator.ResilienceStats` on the returned
:class:`~repro.stream.simulator.StreamResult`.
"""

from __future__ import annotations

import logging
import random
from typing import Dict, List, Optional, Sequence

from repro.algorithms.base import OnlineAlgorithm
from repro.algorithms.calibration import calibrate_from_problem
from repro.algorithms.fallback import FallbackChain, FallbackTier
from repro.algorithms.nearest import NearestVendor
from repro.algorithms.online_afa import OnlineAdaptiveFactorAware
from repro.algorithms.online_static import OnlineStaticThreshold
from repro.core.assignment import AdInstance, Assignment
from repro.core.entities import AdType, Customer, Vendor
from repro.core.problem import MUAAProblem
from repro.exceptions import ResilienceError, TransientError
from repro.obs.recorder import recorder
from repro.resilience.clock import SimulatedClock
from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    FaultyUtilityModel,
    perturb_arrivals,
)
from repro.resilience.policy import (
    CircuitBreaker,
    DependencyGuard,
    RetryPolicy,
)
from repro.stream.arrivals import by_arrival_time
from repro.stream.simulator import ResilienceStats, StreamResult
from repro.utility.model import DelegatingUtilityModel, UtilityModel

logger = logging.getLogger(__name__)

#: Commit outcomes of :meth:`ResilientBroker._commit`.
_COMMITTED, _INFEASIBLE, _FAILED = "committed", "infeasible", "failed"


class GuardedUtilityModel(DelegatingUtilityModel):
    """A utility model whose every evaluation runs under a guard.

    The inner model is typically a
    :class:`~repro.resilience.faults.FaultyUtilityModel`; the guard
    supplies retry/backoff, timeout, and circuit breaking, so transient
    utility-service faults are absorbed here and only persistent
    outages surface to the fallback chain.
    """

    def __init__(self, inner: UtilityModel, guard: DependencyGuard) -> None:
        super().__init__(inner)
        self._guard = guard

    def pair_base(self, customer: Customer, vendor: Vendor) -> float:
        return self._guard.call(lambda: self.inner.pair_base(customer, vendor))

    def utility(
        self, customer: Customer, vendor: Vendor, ad_type: AdType
    ) -> float:
        if self.inner.type_sensitive:
            return self._guard.call(
                lambda: self.inner.utility(customer, vendor, ad_type)
            )
        return self.pair_base(customer, vendor) * ad_type.effectiveness


class GuardedProblem(MUAAProblem):
    """A problem view whose remote-ish dependencies are guarded.

    Shares the base problem's entities and budgets but substitutes a
    guarded utility model and routes vendor-side range queries (the
    online algorithms' spatial dependency) through fault injection and
    a dependency guard.  Values are never altered, so anything decided
    against this view validates against the pristine problem.
    """

    def __init__(
        self,
        base: MUAAProblem,
        utility_model: UtilityModel,
        injector: FaultInjector,
        spatial_guard: Optional[DependencyGuard] = None,
    ) -> None:
        # The engine would batch-evaluate utilities outside the guard;
        # fault injection must see every evaluation, so force the
        # scalar path (the guarded model type is rejected by the engine
        # anyway -- this makes the intent explicit).
        super().__init__(
            customers=base.customers,
            vendors=base.vendors,
            ad_types=base.ad_types,
            utility_model=utility_model,
            pair_validator=base._pair_validator,
            spatial_backend=base._spatial_backend,
            use_engine=False,
            churn=base.churn,
        )
        self._injector = injector
        self._spatial_guard = spatial_guard

    def valid_vendor_ids(self, customer: Customer) -> List[int]:
        def attempt() -> List[int]:
            self._injector.before_call("spatial")
            return MUAAProblem.valid_vendor_ids(self, customer)

        if self._spatial_guard is None:
            return attempt()
        return self._spatial_guard.call(attempt)


class ResilientBroker:
    """Fault-tolerant online serving over one MUAA instance.

    Args:
        problem: The pristine MUAA instance (ground truth for budgets,
            utilities, and validation).
        plan: Seeded fault plan; ``None`` injects nothing (the broker
            then behaves like the plain simulator plus bookkeeping).
        primary: Primary decision algorithm; defaults to O-AFA with
            thresholds calibrated from the pristine instance.
        chain: Full custom fallback chain, overriding ``primary`` and
            the default tiers.  The default chain is
            primary -> static-threshold O-AFA -> nearest-vendor, with
            the last tier reading the pristine problem directly (it is
            the dependency-free local mode).
        clock: Clock driving backoff, breakers, timeouts, and latency
            accounting.  Defaults to a fresh
            :class:`~repro.resilience.clock.SimulatedClock` -- the
            broker is first a chaos harness, and a simulated clock
            makes every run deterministic.  Pass
            :class:`~repro.resilience.clock.SystemClock` for wall-clock
            serving.
        retry: Retry/backoff policy shared by all guards.
        breaker_failure_threshold: Consecutive failures tripping a
            dependency's breaker.
        breaker_recovery_timeout: Open-state cool-down (seconds on the
            injected clock).
        call_timeout: Optional per-dependency-call budget in seconds.
        decision_deadline: Optional per-customer decision deadline;
            like the simulator's, late decisions lose the customer.
        shard_plan: Optional :class:`~repro.sharding.ShardPlan`.  Each
            arriving customer is routed by location to one shard and
            decided against a guarded view of that shard only, so a
            decision touches one shard's columns.  Commits, validation,
            and the dependency-free nearest-vendor tier stay on the
            pristine global problem.
    """

    def __init__(
        self,
        problem: MUAAProblem,
        plan: Optional[FaultPlan] = None,
        primary: Optional[OnlineAlgorithm] = None,
        chain: Optional[Sequence[FallbackTier]] = None,
        clock=None,
        retry: Optional[RetryPolicy] = None,
        breaker_failure_threshold: int = 5,
        breaker_recovery_timeout: float = 5.0,
        call_timeout: Optional[float] = None,
        decision_deadline: Optional[float] = None,
        shard_plan=None,
    ) -> None:
        self._problem = problem
        self._plan = plan if plan is not None else FaultPlan()
        self._primary = primary
        self._chain_spec = list(chain) if chain is not None else None
        self._clock = clock if clock is not None else SimulatedClock()
        self._retry = retry or RetryPolicy()
        self._breaker_failure_threshold = breaker_failure_threshold
        self._breaker_recovery_timeout = breaker_recovery_timeout
        self._call_timeout = call_timeout
        self._decision_deadline = decision_deadline
        self._shard_plan = shard_plan

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _default_primary(self) -> OnlineAlgorithm:
        try:
            bounds = calibrate_from_problem(self._problem, seed=self._plan.seed)
        except ValueError:
            logger.warning(
                "calibration found no positive efficiencies; "
                "using a static-threshold primary"
            )
            return OnlineStaticThreshold(0.0)
        return OnlineAdaptiveFactorAware(
            gamma_min=bounds.gamma_min, g=bounds.g
        )

    def _build_chain(self) -> FallbackChain:
        if self._chain_spec is not None:
            return FallbackChain(self._chain_spec)
        primary = self._primary or self._default_primary()
        return FallbackChain(
            [
                FallbackTier(primary),
                FallbackTier(OnlineStaticThreshold(0.0)),
                # Last resort: utility-oblivious local mode on the
                # pristine problem -- it needs no remote dependency, so
                # it stays available whatever the fault plan does.
                FallbackTier(NearestVendor(), problem=self._problem),
            ]
        )

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def run(
        self,
        arrivals: Optional[Sequence[Customer]] = None,
        churn=None,
    ) -> StreamResult:
        """Serve one full stream under the configured fault plan.

        Never raises for any seeded fault plan: per-customer failures
        degrade or abandon that decision and the stream continues.

        Args:
            arrivals: Arrival order (arrival-time order by default).
            churn: Optional :class:`~repro.churn.ChurnSchedule`.  Events
                scheduled at arrival index ``t`` are applied -- through
                the broker's shard plan when one was supplied, else
                directly on the pristine problem -- before customer
                ``t`` is decided.  Guarded views are scalar and cheap,
                so churn simply rebuilds the ones it touched.

        Returns:
            A :class:`StreamResult` whose ``resilience`` field carries
            the full fault/retry/breaker accounting.
        """
        problem, plan, clock = self._problem, self._plan, self._clock
        stats = ResilienceStats()
        injector = FaultInjector(plan, clock)
        jitter_rng = random.Random(f"{plan.seed}:jitter")
        breakers = {
            name: CircuitBreaker(
                name,
                clock,
                failure_threshold=self._breaker_failure_threshold,
                recovery_timeout=self._breaker_recovery_timeout,
            )
            for name in ("utility", "spatial")
        }
        utility_guard = DependencyGuard(
            "utility",
            clock,
            retry=self._retry,
            breaker=breakers["utility"],
            timeout=self._call_timeout,
            rng=jitter_rng,
        )
        spatial_guard = DependencyGuard(
            "spatial",
            clock,
            retry=self._retry,
            breaker=breakers["spatial"],
            timeout=self._call_timeout,
            rng=jitter_rng,
        )
        guarded_model = GuardedUtilityModel(
            FaultyUtilityModel(problem.utility_model, injector), utility_guard
        )
        guarded_problem = GuardedProblem(
            problem, guarded_model, injector, spatial_guard
        )
        chain = self._build_chain()
        chain.reset(guarded_problem)

        shard_plan = self._shard_plan
        if shard_plan is not None and shard_plan.is_identity:
            shard_plan = None  # identity plan == the global problem
        # Guarded views of the shards a decision actually touches,
        # built lazily; all share the one guarded model/injector so the
        # fault accounting stays global.
        shard_guarded: Dict[int, GuardedProblem] = {}

        if arrivals is None:
            arrivals = by_arrival_time(problem.customers)
        arrivals, dropped, reordered = perturb_arrivals(arrivals, plan)
        stats.arrivals_dropped = dropped
        stats.arrivals_reordered = reordered

        assignment = problem.new_assignment()
        result = StreamResult(assignment=assignment, resilience=stats)
        seen = set()
        rec = recorder()
        guards = (utility_guard, spatial_guard)
        base_skips = problem.churn.skips
        try:
            for tick, customer in enumerate(arrivals):
                if churn is not None:
                    applied = 0
                    for event in churn.at(tick):
                        if self._shard_plan is not None:
                            self._shard_plan.apply_churn(event)
                        else:
                            problem.apply_churn(event)
                        applied += 1
                        rec.count("broker.churn_events")
                        rec.event(
                            "broker.churn",
                            kind=event.kind,
                            epoch=problem.churn.epoch,
                        )
                    if applied:
                        # Guarded views copy the entity catalogue, so a
                        # structural change rebuilds them (scalar views,
                        # no engine -- cheap by construction).
                        guarded_problem = GuardedProblem(
                            problem, guarded_model, injector, spatial_guard
                        )
                        shard_guarded.clear()
                seen.add(customer.customer_id)
                faults_before = injector.total_faults
                retries_before = sum(g.retries for g in guards)
                target = guarded_problem
                span_attrs = {"customer": customer.customer_id}
                if churn is not None:
                    span_attrs["epoch"] = problem.churn.epoch
                if shard_plan is not None:
                    shard = shard_plan.route(customer)
                    if shard is not None:
                        target = shard_guarded.get(shard)
                        if target is None:
                            target = GuardedProblem(
                                shard_plan.problem_for(shard),
                                guarded_model,
                                injector,
                                spatial_guard,
                            )
                            shard_guarded[shard] = target
                        span_attrs["shard"] = shard
                        rec.count("broker.shard_decisions")
                start = clock()
                tier: Optional[int] = None
                with rec.span("broker.decision", **span_attrs):
                    try:
                        picked = chain.process_customer(
                            target, customer, assignment
                        )
                        tier = chain.last_tier_used
                    except ResilienceError as exc:
                        stats.decisions_abandoned += 1
                        picked = []
                        rec.count("broker.decisions_abandoned")
                        logger.warning(
                            "every tier failed for customer %d (%s); "
                            "decision abandoned",
                            customer.customer_id,
                            exc,
                        )
                elapsed = clock() - start
                result.latencies.append(elapsed)
                rec.observe("broker.decision_seconds", elapsed)
                if tier is not None and tier > 0:
                    rec.count("broker.degraded_decisions")
                degraded = (
                    tier is None
                    or tier > 0
                    or injector.total_faults > faults_before
                    or sum(g.retries for g in guards) > retries_before
                )
                (stats.degraded_latencies if degraded
                 else stats.clean_latencies).append(elapsed)
                if (
                    self._decision_deadline is not None
                    and elapsed > self._decision_deadline
                ):
                    result.customers_lost += 1
                    rec.count("broker.deadline_drops")
                    logger.info(
                        "customer %d lost: decision took %.4fs "
                        "(deadline %.4fs)",
                        customer.customer_id,
                        elapsed,
                        self._decision_deadline,
                    )
                    continue
                for instance in picked:
                    if instance.customer_id not in seen:
                        result.rejected_instances += 1
                        continue
                    outcome = self._commit(
                        instance, assignment, injector, stats, jitter_rng
                    )
                    if outcome == _INFEASIBLE:
                        result.rejected_instances += 1
                    elif outcome == _FAILED:
                        stats.deliveries_failed += 1
                    # Auto-deactivation of exhausted vendors is part of
                    # churn-aware serving: on plain runs the fallback
                    # ladder must see the same candidate sets (and make
                    # the same guarded calls) as the seed broker.
                    if (
                        churn is not None
                        and outcome != _INFEASIBLE
                        and problem.note_if_exhausted(
                            assignment, instance.vendor_id
                        )
                    ):
                        stats.vendors_deactivated += 1
                        rec.count("broker.vendors_deactivated")
        finally:
            # Auto-deactivations are run-local; roll them back so the
            # pristine problem stays reusable across broker runs.
            problem.reset_auto_deactivations()

        stats.churn_epoch = problem.churn.epoch
        stats.exhausted_skips = problem.churn.skips - base_skips
        result.churn_epoch = stats.churn_epoch
        result.exhausted_skips = stats.exhausted_skips
        result.vendors_deactivated = stats.vendors_deactivated
        if stats.exhausted_skips:
            rec.gauge("broker.exhausted_skips", stats.exhausted_skips)
        stats.retries += sum(g.retries for g in guards)
        stats.timeouts = sum(g.timeouts for g in guards)
        stats.faults_injected = {
            f"{dep}:{kind}": count
            for (dep, kind), count in sorted(injector.counts.items())
        }
        transitions = [
            (name, when, from_state.value, to_state.value)
            for name, breaker in breakers.items()
            for when, from_state, to_state in breaker.transitions
        ]
        transitions.sort(key=lambda item: item[1])
        stats.breaker_transitions = transitions
        stats.breaker_counts = ResilienceStats.count_transitions(transitions)
        stats.degraded_decisions = (
            chain.degraded_decisions + stats.decisions_abandoned
        )
        stats.decisions_by_tier = {
            chain.tiers[i].name: count
            for i, count in enumerate(chain.decisions_by_tier)
            if count
        }
        logger.info(
            "stream served: %d ads, %d degraded decisions, %d retries, "
            "%d breaker transitions, %d duplicates suppressed",
            len(assignment),
            stats.degraded_decisions,
            stats.retries,
            len(stats.breaker_transitions),
            stats.duplicates_suppressed,
        )
        return result

    # ------------------------------------------------------------------
    # Idempotent commit path
    # ------------------------------------------------------------------
    def _commit(
        self,
        instance: AdInstance,
        assignment: Assignment,
        injector: FaultInjector,
        stats: ResilienceStats,
        rng: random.Random,
    ) -> str:
        """Commit one delivery with retries and duplicate suppression.

        The commit itself is local and atomic; what the fault plan can
        break is the *round trip* -- a transient before the commit, or a
        lost acknowledgement after it.  The retry loop is idempotent:
        a re-attempt that finds the identical instance already
        committed counts as a suppressed duplicate, never as a second
        budget charge.
        """
        for attempt in range(self._retry.max_attempts):
            try:
                injector.before_call("commit")
            except TransientError:
                if attempt + 1 >= self._retry.max_attempts:
                    logger.warning(
                        "delivery of %s failed after %d attempts",
                        instance,
                        attempt + 1,
                    )
                    return _FAILED
                stats.retries += 1
                self._clock.sleep(self._retry.backoff(attempt, rng))
                continue
            existing = assignment.instance_for_pair(
                instance.customer_id, instance.vendor_id
            )
            if existing is not None:
                if existing == instance:
                    # A previous attempt committed but its ack was
                    # lost; recognise and suppress the duplicate.
                    stats.duplicates_suppressed += 1
                    logger.debug("suppressed duplicate delivery %s", instance)
                    return _COMMITTED
                return _INFEASIBLE
            if not assignment.add(instance, strict=False):
                return _INFEASIBLE
            if injector.ack_lost():
                # Committed, but the broker does not know -- re-attempt
                # as a real at-least-once delivery pipeline would.
                stats.retries += 1
                continue
            return _COMMITTED
        # Attempts exhausted with the ack still lost: the ad *was*
        # delivered exactly once; only our confirmation is missing.
        return _COMMITTED
