"""Resilient serving layer: fault injection, policies, fallback broker.

This package hardens the online MUAA broker for the conditions a
production ad system actually runs under: dependencies that throw and
stall, deliveries whose acks get lost, arrival streams that drop and
reorder.  Three pieces compose:

* :mod:`repro.resilience.faults` -- a deterministic, seeded
  fault-injection harness (:class:`FaultPlan`, :class:`FaultInjector`);
* :mod:`repro.resilience.policy` -- retry with exponential backoff and
  deterministic jitter, per-call timeouts, and per-dependency circuit
  breakers, all on an injectable clock
  (:mod:`repro.resilience.clock`);
* :mod:`repro.resilience.broker` -- :class:`ResilientBroker`, the
  hardened simulator with an O-AFA -> static-threshold ->
  nearest-vendor graceful-degradation chain and an idempotent commit
  path.

See ``docs/resilience.md`` for the full tour.
"""

from repro.resilience.broker import (
    GuardedProblem,
    GuardedUtilityModel,
    ResilientBroker,
)
from repro.resilience.clock import SimulatedClock, SystemClock
from repro.resilience.faults import (
    DEPENDENCIES,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    FaultyUtilityModel,
    perturb_arrivals,
)
from repro.resilience.policy import (
    BreakerState,
    CircuitBreaker,
    DependencyGuard,
    RetryPolicy,
)

__all__ = [
    "GuardedProblem",
    "GuardedUtilityModel",
    "ResilientBroker",
    "SimulatedClock",
    "SystemClock",
    "DEPENDENCIES",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FaultyUtilityModel",
    "perturb_arrivals",
    "BreakerState",
    "CircuitBreaker",
    "DependencyGuard",
    "RetryPolicy",
]
