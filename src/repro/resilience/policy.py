"""Resilience policies: retry with backoff, timeouts, circuit breaking.

All three policies read time exclusively through an injectable clock
(:mod:`repro.resilience.clock`), so their state machines are unit
testable with zero sleeps: a test advances a
:class:`~repro.resilience.clock.SimulatedClock` and observes the
transitions.

* :class:`RetryPolicy` -- exponential backoff with *deterministic*
  jitter (a seeded RNG), so two runs of the same plan wait the same
  amounts.
* :class:`CircuitBreaker` -- the classic closed / open / half-open
  automaton, one per dependency.
* :class:`DependencyGuard` -- composes both plus a per-call timeout
  around one named dependency; this is the only piece the broker calls.
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass
from enum import Enum
from typing import Callable, List, Optional, Tuple, TypeVar

from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceededError,
    TransientError,
)
from repro.obs.recorder import recorder

logger = logging.getLogger(__name__)

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    Attributes:
        max_attempts: Total tries, including the first (>= 1).
        base_delay: Backoff before the second attempt, in seconds.
        multiplier: Growth factor per further attempt.
        max_delay: Cap on any single backoff.
        jitter: Fractional jitter; the delay for attempt ``k`` is
            scaled by a factor drawn uniformly from
            ``[1 - jitter, 1 + jitter]`` using the seeded RNG supplied
            per call, so jitter de-synchronises retries without
            sacrificing reproducibility.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Seconds to wait after failed attempt ``attempt`` (0-based)."""
        delay = min(self.base_delay * self.multiplier**attempt, self.max_delay)
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


class BreakerState(Enum):
    """Circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Per-dependency closed / open / half-open circuit breaker.

    Closed: calls flow; ``failure_threshold`` *consecutive* failures
    trip the breaker open.  Open: calls are refused outright until
    ``recovery_timeout`` seconds pass on the injected clock.  Half-open:
    up to ``half_open_max_calls`` probe calls are admitted; any failure
    re-opens the breaker, enough successes close it.

    Args:
        name: Dependency name (for logs and transition records).
        clock: Callable returning monotonic seconds.
        failure_threshold: Consecutive failures that trip the breaker.
        recovery_timeout: Open-state cool-down before probing.
        half_open_max_calls: Probes admitted (and successes required)
            while half-open.
    """

    def __init__(
        self,
        name: str,
        clock: Callable[[], float],
        failure_threshold: int = 5,
        recovery_timeout: float = 30.0,
        half_open_max_calls: int = 1,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if recovery_timeout < 0:
            raise ValueError("recovery_timeout must be >= 0")
        if half_open_max_calls < 1:
            raise ValueError("half_open_max_calls must be >= 1")
        self.name = name
        self._clock = clock
        self._failure_threshold = failure_threshold
        self._recovery_timeout = recovery_timeout
        self._half_open_max_calls = half_open_max_calls
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._half_open_inflight = 0
        self._half_open_successes = 0
        #: ``(time, from_state, to_state)`` history of every transition.
        self.transitions: List[Tuple[float, BreakerState, BreakerState]] = []

    @property
    def state(self) -> BreakerState:
        """Current state, accounting for open->half-open cool-down."""
        if (
            self._state is BreakerState.OPEN
            and self._clock() - self._opened_at >= self._recovery_timeout
        ):
            self._transition(BreakerState.HALF_OPEN)
        return self._state

    def _transition(self, to_state: BreakerState) -> None:
        if to_state is self._state:
            return
        self.transitions.append((self._clock(), self._state, to_state))
        rec = recorder()
        rec.event(
            "resilience.breaker_transition",
            dependency=self.name,
            from_state=self._state.value,
            to_state=to_state.value,
        )
        rec.count("resilience.breaker_transitions")
        level = (
            logging.WARNING if to_state is BreakerState.OPEN else logging.INFO
        )
        logger.log(
            level,
            "breaker %s: %s -> %s",
            self.name,
            self._state.value,
            to_state.value,
        )
        self._state = to_state
        if to_state is BreakerState.HALF_OPEN:
            self._half_open_inflight = 0
            self._half_open_successes = 0
        elif to_state is BreakerState.CLOSED:
            self._consecutive_failures = 0

    def admit(self) -> None:
        """Gate in front of one call attempt.

        Raises:
            CircuitOpenError: While open (or half-open with all probe
                slots taken).
        """
        state = self.state
        if state is BreakerState.OPEN:
            raise CircuitOpenError(f"circuit open for {self.name}")
        if state is BreakerState.HALF_OPEN:
            if self._half_open_inflight >= self._half_open_max_calls:
                raise CircuitOpenError(
                    f"circuit half-open for {self.name}: probe in flight"
                )
            self._half_open_inflight += 1

    def record_success(self) -> None:
        """Report a successful call."""
        if self._state is BreakerState.HALF_OPEN:
            self._half_open_successes += 1
            if self._half_open_successes >= self._half_open_max_calls:
                self._transition(BreakerState.CLOSED)
        else:
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        """Report a failed call (transient error or timeout)."""
        if self._state is BreakerState.HALF_OPEN:
            self._opened_at = self._clock()
            self._transition(BreakerState.OPEN)
            return
        self._consecutive_failures += 1
        if (
            self._state is BreakerState.CLOSED
            and self._consecutive_failures >= self._failure_threshold
        ):
            self._opened_at = self._clock()
            self._transition(BreakerState.OPEN)


class DependencyGuard:
    """Retry + timeout + circuit breaking around one named dependency.

    Args:
        name: Dependency name (logs, error messages).
        clock: Clock object; must be callable (returning seconds) and
            expose ``sleep`` (real or simulated) for backoff waits.
        retry: The retry/backoff policy.
        breaker: Optional circuit breaker; ``None`` disables breaking.
        timeout: Optional per-call budget in seconds.  Calls cannot be
            pre-empted mid-flight, so the budget is enforced post hoc:
            an over-budget call counts as a failure (the caller's
            answer arrived too late to be useful).
        rng: Seeded RNG driving jitter; defaults to a fresh
            ``random.Random(0)`` so unconfigured guards stay
            deterministic.
    """

    def __init__(
        self,
        name: str,
        clock,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        timeout: Optional[float] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.name = name
        self._clock = clock
        self.retry = retry or RetryPolicy()
        self.breaker = breaker
        self.timeout = timeout
        self._rng = rng or random.Random(0)
        #: Total retry waits performed (attempts beyond the first).
        self.retries = 0
        #: Calls that exhausted every attempt.
        self.exhausted = 0
        #: Post-hoc timeout failures observed.
        self.timeouts = 0

    def call(self, fn: Callable[[], T]) -> T:
        """Run ``fn`` under the guard's policies.

        Raises:
            CircuitOpenError: Refused by the breaker (no attempt made).
            TransientError: Every attempt failed transiently.
            DeadlineExceededError: Every attempt blew the call timeout.
        """
        last_error: Exception = TransientError(
            f"{self.name}: no attempt made"
        )
        for attempt in range(self.retry.max_attempts):
            if self.breaker is not None:
                self.breaker.admit()
            started = self._clock()
            try:
                result = fn()
            except TransientError as exc:
                last_error = exc
                self._note_failure()
                if not self._backoff_or_give_up(attempt):
                    raise
                continue
            elapsed = self._clock() - started
            if self.timeout is not None and elapsed > self.timeout:
                self.timeouts += 1
                rec = recorder()
                rec.event(
                    "resilience.timeout",
                    dependency=self.name,
                    elapsed=elapsed,
                )
                rec.count("resilience.timeouts")
                last_error = DeadlineExceededError(
                    f"{self.name}: call took {elapsed:.4f}s "
                    f"(timeout {self.timeout:.4f}s)"
                )
                logger.debug("%s", last_error)
                self._note_failure()
                if not self._backoff_or_give_up(attempt):
                    raise last_error
                continue
            if self.breaker is not None:
                self.breaker.record_success()
            return result
        raise last_error  # pragma: no cover - loop always raises/returns

    def _note_failure(self) -> None:
        if self.breaker is not None:
            self.breaker.record_failure()

    def _backoff_or_give_up(self, attempt: int) -> bool:
        """Wait before the next attempt; False when attempts are spent."""
        if attempt + 1 >= self.retry.max_attempts:
            self.exhausted += 1
            logger.debug(
                "%s: giving up after %d attempts", self.name, attempt + 1
            )
            return False
        if self.breaker is not None and self.breaker.state is BreakerState.OPEN:
            # The failure we just recorded tripped the breaker; further
            # attempts would be refused anyway, so fail fast.
            self.exhausted += 1
            return False
        delay = self.retry.backoff(attempt, self._rng)
        logger.debug(
            "%s: retry %d after %.4fs backoff", self.name, attempt + 1, delay
        )
        self.retries += 1
        rec = recorder()
        rec.event(
            "resilience.retry",
            dependency=self.name,
            attempt=attempt + 1,
            backoff=delay,
        )
        rec.count("resilience.retries")
        self._clock.sleep(delay)
        return True
