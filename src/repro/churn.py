"""Churn events, epochs, and seeded churn plans.

Long-running serving treats the problem as *mutable*: vendors join and
leave the marketplace, budgets deplete, and traffic hot-spots drift
between shards.  This module defines the shared vocabulary for those
mutations:

* :class:`ChurnEvent` -- one immutable delta (vendor insert/retire/
  deactivate, or a cell-group migration between shards);
* :class:`ChurnLog` -- the ordered, versioned event log.  The **epoch**
  is simply the number of events applied so far (epoch 0 = the cold
  build), so every consumer that processed the same prefix of the log
  agrees on the epoch number;
* :class:`ChurnState` -- the mutable churn bookkeeping *shared* between
  a problem and its shard views (deactivated-vendor set, skip/epoch
  counters).  Budget exhaustion is a global fact, so one shared set
  keeps every view consistent;
* :class:`ShardDelta` / :class:`VendorJoin` -- the per-shard payload a
  :class:`~repro.sharding.plan.ShardPlan` emits when applying an event,
  shippable to out-of-process shard workers;
* :class:`ChurnSchedule` -- events keyed by arrival tick, consumed by
  the stream simulator and the cluster episode loop;
* :func:`seeded_vendor_churn` -- a deterministic join/leave/exhaust
  plan for demos and benchmarks (``repro serve-cluster --churn``).

Every delta primitive downstream is **idempotent** (retiring an unknown
vendor, inserting a present one, or deactivating an inactive one is a
no-op), so the same log prefix may be applied to a state that already
contains it -- which is exactly what happens when a killed shard worker
is re-forked from a parent that already consumed the log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.entities import Customer, Vendor
from repro.seeding import stream_rng

#: The recognised event kinds.
KIND_INSERT = "insert"
KIND_RETIRE = "retire"
KIND_DEACTIVATE = "deactivate"
KIND_MIGRATE = "migrate"

EVENT_KINDS = (KIND_INSERT, KIND_RETIRE, KIND_DEACTIVATE, KIND_MIGRATE)


class ChurnState:
    """Mutable churn bookkeeping shared by a problem and its views.

    Attributes:
        inactive: Vendor ids currently deactivated (exhausted budgets or
            explicit ``deactivate`` events).  Candidate scans filter
            these out.
        auto: The subset of ``inactive`` that was deactivated
            automatically by a stream/broker run; rolled back at the end
            of the run so the problem object is reusable.
        skips: Number of times a candidate scan skipped an inactive
            vendor (the satellite counter surfaced in
            ``ResilienceStats`` and obs).
        deactivations: Number of distinct deactivations applied.
        epoch: Number of churn events processed so far (0 = cold).
    """

    __slots__ = ("inactive", "auto", "skips", "deactivations", "epoch")

    def __init__(self) -> None:
        self.inactive: Set[int] = set()
        self.auto: Set[int] = set()
        self.skips: int = 0
        self.deactivations: int = 0
        self.epoch: int = 0


@dataclass(frozen=True)
class ChurnEvent:
    """One immutable delta against a problem (and optionally its plan).

    Attributes:
        kind: One of :data:`EVENT_KINDS`.
        tick: Arrival index at which the event fires in a schedule
            (``-1`` for events applied immediately).
        vendor: The joining vendor entity (``insert`` only).
        vendor_id: The target vendor (``retire`` / ``deactivate``).
        cells: Grid cells to move (``migrate`` only), in the plan's
            cell coordinates.
        src: Source shard of a migration.
        dst: Destination shard of a migration.
    """

    kind: str
    tick: int = -1
    vendor: Optional[Vendor] = None
    vendor_id: Optional[int] = None
    cells: Tuple[Tuple[int, int], ...] = ()
    src: int = -1
    dst: int = -1

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown churn event kind {self.kind!r}")


class ChurnLog:
    """The ordered, versioned churn-event log.

    The epoch counter equals ``base + len(events)``; ``base`` supports
    rebuilding a plan from serialised metadata that already carries an
    epoch (the events themselves are not persisted -- the post-churn
    vendor grouping is).
    """

    def __init__(self, base: int = 0) -> None:
        self._base = int(base)
        self._events: List[ChurnEvent] = []

    @property
    def epoch(self) -> int:
        """The current epoch (number of events ever applied)."""
        return self._base + len(self._events)

    @property
    def events(self) -> Tuple[ChurnEvent, ...]:
        """The events applied through this log, oldest first."""
        return tuple(self._events)

    def append(self, event: ChurnEvent) -> int:
        """Record one applied event; returns the new epoch."""
        self._events.append(event)
        return self.epoch

    def since(self, epoch: int) -> Tuple[ChurnEvent, ...]:
        """Events applied after ``epoch`` (for catch-up replays)."""
        offset = max(0, epoch - self._base)
        return tuple(self._events[offset:])

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[ChurnEvent]:
        return iter(self._events)


@dataclass(frozen=True)
class VendorJoin:
    """A vendor joining one shard view (new vendor or migration).

    Attributes:
        vendor: The joining vendor entity.
        position: Catalogue-order insertion index inside the view's
            vendor list (``None`` appends; joins in a delta are ordered
            by ascending position so sequential insertion is correct).
        admit: Customers that are new to the target view (replicas of
            the vendor's in-range customers not yet present there).
    """

    vendor: Vendor
    position: Optional[int] = None
    admit: Tuple[Customer, ...] = ()


@dataclass(frozen=True)
class ShardDelta:
    """The per-shard payload of one applied churn event.

    Emitted by ``ShardPlan.apply_churn`` for every shard the event
    touches; the cluster episode forwards it to the shard's worker as a
    ``ChurnRequest`` so out-of-process copies of the view stay in sync.
    """

    shard: int
    epoch: int
    retire: Tuple[int, ...] = ()
    deactivate: Tuple[int, ...] = ()
    join: Tuple[VendorJoin, ...] = ()


class ChurnSchedule:
    """Churn events keyed by the arrival tick at which they fire."""

    def __init__(self, events: Iterable[ChurnEvent] = ()) -> None:
        self._by_tick: Dict[int, List[ChurnEvent]] = {}
        self._count = 0
        for event in events:
            self.add(event)

    def add(self, event: ChurnEvent) -> None:
        """Schedule one event at its ``tick``."""
        self._by_tick.setdefault(event.tick, []).append(event)
        self._count += 1

    def at(self, tick: int) -> Tuple[ChurnEvent, ...]:
        """Events scheduled to fire at one arrival index."""
        return tuple(self._by_tick.get(tick, ()))

    @property
    def events(self) -> Tuple[ChurnEvent, ...]:
        """All events, ordered by tick (stable within a tick)."""
        ordered: List[ChurnEvent] = []
        for tick in sorted(self._by_tick):
            ordered.extend(self._by_tick[tick])
        return tuple(ordered)

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0


def seeded_vendor_churn(
    problem,
    n_events: int,
    seed: int,
    n_ticks: int,
    plan=None,
    kinds: Sequence[str] = EVENT_KINDS,
) -> ChurnSchedule:
    """A deterministic vendor join/leave/exhaust/migrate plan.

    Events are spread evenly over ``(0, n_ticks)`` and drawn from a
    dedicated RNG stream (``stream_rng(seed, "churn")`` -- the shared
    :mod:`repro.seeding` derivation, so scenario move/arrival schedules
    drawing their own streams can never shift these draws).  Joining
    vendors
    get fresh ids above the existing catalogue, locations uniform in
    the unit square, radii/budgets sampled within the existing range,
    and the tag vector of a seeded donor vendor -- so the utility model
    keeps working unchanged.  ``migrate`` events (emitted only when a
    non-identity ``plan`` is supplied) move one occupied cell from a
    seeded source shard to its neighbour.

    Args:
        problem: The instance the events will apply to.
        n_events: Number of events to schedule.
        seed: Seed for the dedicated churn RNG stream.
        n_ticks: Length of the arrival stream the schedule spans.
        plan: Optional :class:`~repro.sharding.plan.ShardPlan`; enables
            ``migrate`` events.
        kinds: Event kinds to draw from (deterministically filtered to
            the ones applicable to this problem/plan).
    """
    rng = stream_rng(seed, "churn")
    usable = [k for k in kinds if k in EVENT_KINDS]
    if plan is None or getattr(plan, "is_identity", True):
        usable = [k for k in usable if k != KIND_MIGRATE]
    if not usable:
        raise ValueError("no applicable churn event kinds")

    vendors = list(problem.vendors)
    if not vendors:
        raise ValueError("cannot build a churn plan for a vendor-less problem")
    next_id = max(v.vendor_id for v in vendors) + 1
    radii = sorted(v.radius for v in vendors)
    budgets = sorted(v.budget for v in vendors)
    #: ids eligible for retire/deactivate (never retire a vendor twice).
    live = [v.vendor_id for v in vendors]

    schedule = ChurnSchedule()
    for index in range(n_events):
        tick = max(1, ((index + 1) * n_ticks) // (n_events + 1))
        kind = rng.choice(usable)
        if kind == KIND_INSERT or (kind in (KIND_RETIRE, KIND_DEACTIVATE) and not live):
            donor = rng.choice(vendors)
            vendor = Vendor(
                vendor_id=next_id,
                location=(rng.random(), rng.random()),
                radius=rng.uniform(radii[0], radii[-1]),
                budget=rng.uniform(budgets[0], budgets[-1]),
                tags=donor.tags,
            )
            next_id += 1
            live.append(vendor.vendor_id)
            schedule.add(ChurnEvent(kind=KIND_INSERT, tick=tick, vendor=vendor))
        elif kind == KIND_RETIRE:
            vendor_id = live.pop(rng.randrange(len(live)))
            schedule.add(
                ChurnEvent(kind=KIND_RETIRE, tick=tick, vendor_id=vendor_id)
            )
        elif kind == KIND_DEACTIVATE:
            vendor_id = rng.choice(live)
            schedule.add(
                ChurnEvent(kind=KIND_DEACTIVATE, tick=tick, vendor_id=vendor_id)
            )
        else:  # KIND_MIGRATE
            src = rng.randrange(plan.n_shards)
            dst = (src + 1) % plan.n_shards
            cells = sorted(
                {
                    plan.cell_of(problem.vendors_by_id[vid].location)
                    for vid in plan.vendor_ids(src)
                    if vid in problem.vendors_by_id
                }
            )
            if not cells:
                schedule.add(
                    ChurnEvent(kind=KIND_MIGRATE, tick=tick, src=src, dst=dst)
                )
                continue
            cell = cells[rng.randrange(len(cells))]
            schedule.add(
                ChurnEvent(
                    kind=KIND_MIGRATE,
                    tick=tick,
                    cells=(cell,),
                    src=src,
                    dst=dst,
                )
            )
    return schedule
