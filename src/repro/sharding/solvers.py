"""Shard-local solver building blocks shared by the offline algorithms.

The solvers keep their own sharded entry points (``shards=`` /
``shard_plan=`` on :class:`~repro.algorithms.greedy.GreedyEfficiency`,
:class:`~repro.algorithms.recon.Reconciliation` and
:class:`~repro.algorithms.lp_rounding.LPRounding`); this module holds
the pieces that only need core + engine:

* :func:`shard_candidate_columns` -- extract one shard view's
  positive-utility candidate columns (the memory-heavy vectorized
  part), ready to be released before the next shard is touched;
* :func:`greedy_sweep` -- the single *global* efficiency sweep over
  the concatenated shard columns.  Because candidate efficiencies
  never change as instances are committed, sweeping the merged ranking
  with global capacity/budget state reproduces the unsharded greedy
  exactly (up to cross-shard exact-efficiency ties); the sweep *is*
  the cross-shard capacity reconciliation for GREEDY.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.assignment import AdInstance, Assignment
from repro.core.problem import MUAAProblem

#: Budget tolerance, identical to ``Assignment.can_add``.
_EPS = 1e-9

#: One shard's candidate columns: parallel arrays of efficiency,
#: utility, customer id, vendor id, and ad-type id.
CandidateColumns = Tuple[
    np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray
]


def shard_candidate_columns(view: MUAAProblem) -> CandidateColumns:
    """Positive-utility candidate columns of one shard view.

    Rides the shard's compute engine when the utility model has a
    vectorized kernel (the ``(E, K)`` utility/efficiency matrices are
    flattened and filtered in one pass); otherwise falls back to the
    scalar candidate enumeration.  Global entity ids are returned, so
    columns from different shards concatenate directly.
    """
    engine = view.acquire_engine()
    if engine is not None:
        utilities = engine.utilities()
        if utilities.size == 0:
            return _empty_columns()
        flat_util = utilities.ravel()
        flat_eff = engine.efficiencies().ravel()
        keep = np.flatnonzero(flat_util > 0)
        if keep.size == 0:
            return _empty_columns()
        n_types = utilities.shape[1]
        edge, k = np.divmod(keep, n_types)
        arrays = engine.arrays
        edges = engine.edges
        return (
            flat_eff[keep],
            flat_util[keep],
            arrays.customer_ids[edges.customer_idx[edge]].astype(np.int64),
            arrays.vendor_ids[edges.vendor_idx[edge]].astype(np.int64),
            arrays.type_ids[k].astype(np.int64),
        )
    rows: List[Tuple[float, float, int, int, int]] = [
        (inst.efficiency, inst.utility, inst.customer_id,
         inst.vendor_id, inst.type_id)
        for inst in view.candidate_instances()
        if inst.utility > 0
    ]
    if not rows:
        return _empty_columns()
    eff, util, cid, vid, tid = zip(*rows)
    return (
        np.asarray(eff, dtype=float),
        np.asarray(util, dtype=float),
        np.asarray(cid, dtype=np.int64),
        np.asarray(vid, dtype=np.int64),
        np.asarray(tid, dtype=np.int64),
    )


def _empty_columns() -> CandidateColumns:
    return (
        np.empty(0, dtype=float),
        np.empty(0, dtype=float),
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
    )


def concat_columns(chunks: List[CandidateColumns]) -> CandidateColumns:
    """Concatenate per-shard columns in shard order."""
    if not chunks:
        return _empty_columns()
    return tuple(
        np.concatenate([chunk[i] for chunk in chunks]) for i in range(5)
    )  # type: ignore[return-value]


def greedy_sweep(
    problem: MUAAProblem,
    columns: CandidateColumns,
    assignment: Assignment,
) -> None:
    """One global efficiency-ranked sweep over merged shard columns.

    Ranking (stable descending efficiency) and feasibility tolerances
    match :class:`~repro.algorithms.greedy.GreedyEfficiency`'s
    vectorized sweep; capacity, budget and pair uniqueness are tracked
    against the *full* problem, which is exactly the coupling the
    per-shard extraction deferred.
    """
    eff, util, cids, vids, tids = columns
    if eff.size == 0:
        return
    order = np.argsort(-eff, kind="stable")
    cost_of = {t.type_id: t.cost for t in problem.ad_types}
    remaining_cap = dict(problem.capacities)
    budgets = problem.budgets
    spent = {vendor_id: 0.0 for vendor_id in budgets}
    used_pairs = set()
    cid_list = cids[order].tolist()
    vid_list = vids[order].tolist()
    tid_list = tids[order].tolist()
    util_list = util[order].tolist()
    for cid, vid, tid, utility in zip(
        cid_list, vid_list, tid_list, util_list
    ):
        if remaining_cap[cid] <= 0 or (cid, vid) in used_pairs:
            continue
        cost = cost_of[tid]
        if spent[vid] + cost > budgets[vid] + _EPS:
            continue
        used_pairs.add((cid, vid))
        remaining_cap[cid] -= 1
        spent[vid] += cost
        assignment.add(
            AdInstance(
                customer_id=cid,
                vendor_id=vid,
                type_id=tid,
                utility=utility,
                cost=cost,
            ),
            strict=True,
        )
