"""Spatial shard plans: partitioning one MUAA problem into cell groups.

A :class:`ShardPlan` partitions the **vendors** of a problem into
spatial shards via :class:`~repro.spatial.grid_index.GridIndex` cells
whose side is at least the maximum advertising radius ``max r_j``.
That cell-size floor is what makes sharding exact rather than
approximate: a vendor's candidates all lie within its radius (the
Eq. 4 range constraint), so replicating every in-range customer into
the vendor's shard gives each shard the vendor's *complete* candidate
set.  Per-vendor subproblems solved inside a shard are therefore
identical to the ones the unsharded solver sees; only the *global*
customer-capacity constraint couples shards, and it is restored by a
cross-shard reconciliation pass (see ``docs/sharding.md``).

Invariants:

* every vendor belongs to exactly one shard;
* a shard's customer set is the union of its vendors' valid customers
  (a customer in range of vendors in several shards is **replicated**
  into each; capacity stays tracked globally by the solvers);
* per-shard problem views use global entity ids, so instances decided
  in a shard validate directly against the full problem;
* ``shards=1`` is the identity plan: :meth:`ShardPlan.problem_for`
  returns the original problem object itself, so nothing downstream
  can diverge byte-wise from the unsharded path.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from typing import Dict, List, Optional, Sequence, Tuple

from repro.churn import (
    KIND_DEACTIVATE,
    KIND_INSERT,
    KIND_MIGRATE,
    KIND_RETIRE,
    ChurnEvent,
    ChurnLog,
    ShardDelta,
    VendorJoin,
)
from repro.core.entities import Customer, Vendor
from repro.core.problem import MUAAProblem
from repro.exceptions import InvalidProblemError
from repro.spatial.grid_index import GridIndex
from repro.spatial.queries import valid_vendors

#: Version of the :meth:`ShardPlan.to_metadata` document layout.
#: v2 adds ``churn_epoch``; v1 documents still load (epoch 0).
METADATA_SCHEMA_VERSION = 2

#: Floor on the shard cell size, mirroring the spatial-query backends.
_MIN_CELL = 1e-6


class ShardPlan:
    """A spatial partition of one problem's vendors into shards.

    Build with :meth:`ShardPlan.build` (grid-driven) or
    :meth:`ShardPlan.from_metadata` (a previously serialised grouping).
    The plan owns lazily-built per-shard :class:`MUAAProblem` views;
    :meth:`release` drops a view (and its compute engine) so peak
    memory stays bounded by the largest shard plus bookkeeping.
    """

    def __init__(
        self,
        problem: MUAAProblem,
        cell_size: float,
        shard_vendor_ids: Sequence[Sequence[int]],
        churn_epoch: int = 0,
    ) -> None:
        if not shard_vendor_ids:
            raise InvalidProblemError("a shard plan needs at least one shard")
        self._problem = problem
        self._cell_size = float(cell_size)
        self._shard_vendor_ids: List[List[int]] = [
            list(ids) for ids in shard_vendor_ids
        ]
        self._identity = len(self._shard_vendor_ids) == 1

        seen: Dict[int, int] = {}
        for shard, ids in enumerate(self._shard_vendor_ids):
            for vendor_id in ids:
                if vendor_id not in problem.vendors_by_id:
                    raise InvalidProblemError(
                        f"shard {shard}: unknown vendor id {vendor_id}"
                    )
                if vendor_id in seen:
                    raise InvalidProblemError(
                        f"vendor {vendor_id} appears in shards "
                        f"{seen[vendor_id]} and {shard}"
                    )
                seen[vendor_id] = shard
        if len(seen) != len(problem.vendors):
            missing = set(problem.vendors_by_id) - set(seen)
            raise InvalidProblemError(
                f"shard plan misses vendors {sorted(missing)[:5]}"
            )
        #: vendor id -> its (single) shard index.
        self.shard_of_vendor: Dict[int, int] = seen

        self._shard_customer_ids: List[List[int]] = []
        self._shards_of_customer: Dict[int, List[int]] = {}
        self._edge_counts: Optional[List[int]] = None
        self._cell_owner: Dict[Tuple[int, int], int] = {}
        self._views: Dict[int, MUAAProblem] = {}
        # Incremental-churn bookkeeping: per-shard customer refcounts
        # (how many of a shard's vendors have the customer in range),
        # per-vendor candidate degrees, and the global customer row
        # order that keeps membership lists deterministic.
        self._refs: List[Dict[int, int]] = []
        self._vendor_degrees: Dict[int, int] = {}
        self._customer_rows: Dict[int, int] = {
            c.customer_id: row for row, c in enumerate(problem.customers)
        }
        #: Per-shard structural version, bumped whenever churn changes
        #: the shard's vendor/customer sets (consumed by caching layers).
        self.shard_versions: List[int] = [0] * len(self._shard_vendor_ids)
        #: ``(shard, customer_id)`` memberships added by customer moves,
        #: rolled back by :meth:`reset_moves`.
        self._move_additions: List[Tuple[int, int]] = []
        self._churn_log = ChurnLog(base=churn_epoch)
        self._finalize()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        problem: MUAAProblem,
        shards: int,
        cell_size: Optional[float] = None,
    ) -> "ShardPlan":
        """Partition ``problem`` into at most ``shards`` spatial shards.

        Vendors are binned into grid cells of side
        ``max(extent / ceil(sqrt(shards)), max_radius)`` -- never below
        the maximum advertising radius, so each vendor's candidate set
        is contained in its own shard once customers are replicated.
        Occupied cells (in lexicographic order) are grouped into
        contiguous runs balanced by vendor count; sparse or clustered
        instances may therefore yield fewer shards than requested.

        Args:
            problem: The instance to partition.
            shards: Requested shard count (values below 1 are clamped).
            cell_size: Explicit cell side, overriding the heuristic.
                Still floored at the maximum vendor radius.

        Raises:
            InvalidProblemError: On a non-finite explicit cell size.
        """
        shards = max(1, int(shards))
        if shards == 1 or not problem.vendors:
            return cls.identity(problem)
        if cell_size is not None and not (
            math.isfinite(cell_size) and cell_size > 0
        ):
            raise InvalidProblemError(
                f"shard cell_size must be finite and positive, "
                f"got {cell_size}"
            )
        cell = cls._heuristic_cell(problem, shards, cell_size)
        grid = GridIndex.build(
            [(v.vendor_id, v.location) for v in problem.vendors], cell
        )
        cells = grid.cells()
        counts = [len(grid.points_in_cell(c)) for c in cells]
        groups = _balanced_groups(counts, shards)
        shard_vendor_ids: List[List[int]] = []
        rows = {v.vendor_id: row for row, v in enumerate(problem.vendors)}
        for group in groups:
            ids = [
                vendor_id
                for cell_pos in group
                for vendor_id in grid.points_in_cell(cells[cell_pos])
            ]
            # Catalogue order inside the shard: per-vendor work then
            # runs in the same relative order as the unsharded loops.
            ids.sort(key=rows.__getitem__)
            shard_vendor_ids.append(ids)
        return cls(problem, cell, shard_vendor_ids)

    @classmethod
    def identity(cls, problem: MUAAProblem) -> "ShardPlan":
        """The single-shard plan: shard 0 *is* the original problem."""
        cell = problem.max_radius if problem.max_radius > 0 else 1.0
        return cls(
            problem, cell, [[v.vendor_id for v in problem.vendors]]
        )

    @staticmethod
    def _heuristic_cell(
        problem: MUAAProblem, shards: int, cell_size: Optional[float]
    ) -> float:
        """Cell side: requested split of the extent, floored at max r_j."""
        locations = [v.location for v in problem.vendors] + [
            c.location for c in problem.customers
        ]
        xs = [p[0] for p in locations]
        ys = [p[1] for p in locations]
        extent = max(max(xs) - min(xs), max(ys) - min(ys), _MIN_CELL)
        k = max(1, math.ceil(math.sqrt(shards)))
        wanted = cell_size if cell_size is not None else extent / k
        return max(wanted, problem.max_radius, _MIN_CELL)

    def _finalize(self) -> None:
        """Derive customer memberships, replication, and cell owners."""
        problem = self._problem
        if self._identity:
            self._shard_customer_ids = [
                [c.customer_id for c in problem.customers]
            ]
            self._shards_of_customer = {
                c.customer_id: [0] for c in problem.customers
            }
            self._refs = [{}]
            return
        customer_rows = self._customer_rows
        edge_counts: List[int] = []
        for shard, vendor_ids in enumerate(self._shard_vendor_ids):
            refs: Dict[int, int] = {}
            n_edges = 0
            for vendor_id in vendor_ids:
                vendor = problem.vendors_by_id[vendor_id]
                in_range = problem.valid_customer_ids(vendor)
                n_edges += len(in_range)
                self._vendor_degrees[vendor_id] = len(in_range)
                for customer_id in in_range:
                    refs[customer_id] = refs.get(customer_id, 0) + 1
                cell = self._cell_index(vendor.location)
                self._cell_owner.setdefault(cell, shard)
            ordered = sorted(refs, key=customer_rows.__getitem__)
            self._refs.append(refs)
            self._shard_customer_ids.append(ordered)
            edge_counts.append(n_edges)
            for customer_id in ordered:
                self._shards_of_customer.setdefault(
                    customer_id, []
                ).append(shard)
        self._edge_counts = edge_counts

    def _cell_index(self, point: Tuple[float, float]) -> Tuple[int, int]:
        return (
            int(math.floor(point[0] / self._cell_size)),
            int(math.floor(point[1] / self._cell_size)),
        )

    def cell_of(self, point: Tuple[float, float]) -> Tuple[int, int]:
        """The partition-grid cell of a point (public form of the
        routing/migration cell key)."""
        return self._cell_index(point)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def problem(self) -> MUAAProblem:
        """The underlying (full) problem."""
        return self._problem

    @property
    def n_shards(self) -> int:
        """Number of shards actually materialised (may be below the
        requested count on sparse or clustered instances)."""
        return len(self._shard_vendor_ids)

    @property
    def is_identity(self) -> bool:
        """True for the trivial single-shard plan."""
        return self._identity

    @property
    def cell_size(self) -> float:
        """Side of the partition cells (>= the maximum vendor radius)."""
        return self._cell_size

    @property
    def epoch(self) -> int:
        """The plan's churn epoch: the number of churn events applied
        (plus any epoch inherited from serialised metadata)."""
        return self._churn_log.epoch

    @property
    def churn_log(self) -> ChurnLog:
        """The versioned log of churn events applied to this plan."""
        return self._churn_log

    def vendor_ids(self, shard: int) -> List[int]:
        """Vendor ids of one shard, in global catalogue order."""
        return list(self._shard_vendor_ids[shard])

    def customer_ids(self, shard: int) -> List[int]:
        """Customer ids of one shard, in global catalogue order."""
        return list(self._shard_customer_ids[shard])

    def shards_of_customer(self, customer_id: int) -> List[int]:
        """Shards holding (a replica of) one customer; may be empty."""
        return list(self._shards_of_customer.get(customer_id, ()))

    @property
    def replicated_customers(self) -> int:
        """Customers present in more than one shard."""
        if self._identity:
            return 0
        return sum(
            1
            for shards in self._shards_of_customer.values()
            if len(shards) > 1
        )

    def shard_sizes(self) -> List[Tuple[int, int]]:
        """``(n_vendors, n_customers)`` per shard."""
        return [
            (len(v), len(c))
            for v, c in zip(self._shard_vendor_ids, self._shard_customer_ids)
        ]

    def edge_counts(self) -> List[int]:
        """Candidate-edge (valid pair) count per shard.

        Computed during plan construction from the same range queries
        the engines will run, so the peak-memory profile of a plan is
        known *before* any shard engine is built.
        """
        if self._edge_counts is None:
            counts = []
            for vendor_ids in self._shard_vendor_ids:
                counts.append(
                    sum(
                        len(
                            self._problem.valid_customer_ids(
                                self._problem.vendors_by_id[vendor_id]
                            )
                        )
                        for vendor_id in vendor_ids
                    )
                )
            self._edge_counts = counts
        return list(self._edge_counts)

    def card(self) -> str:
        """A human-readable shard card for CLI/info output."""
        sizes = self.shard_sizes()
        edges = self.edge_counts()
        lines = [
            f"shards:         {self.n_shards} "
            f"(cell size {self._cell_size:.4f})",
            f"replicated:     {self.replicated_customers} customers "
            f"in >1 shard",
        ]
        for shard, ((n_vendors, n_customers), n_edges) in enumerate(
            zip(sizes, edges)
        ):
            lines.append(
                f"  shard {shard}:      {n_vendors:5d} vendors "
                f"{n_customers:6d} customers {n_edges:8d} edges"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Views and routing
    # ------------------------------------------------------------------
    def problem_for(self, shard: int) -> MUAAProblem:
        """The (cached) per-shard problem view.

        Shard views share the full problem's ad catalogue, utility
        model, pair validator, backend and parallel configuration, and
        keep global entity ids; the identity plan returns the original
        problem object itself.
        """
        if self._identity:
            return self._problem
        view = self._views.get(shard)
        if view is None:
            problem = self._problem
            view = MUAAProblem(
                customers=[
                    problem.customers_by_id[cid]
                    for cid in self._shard_customer_ids[shard]
                ],
                vendors=[
                    problem.vendors_by_id[vid]
                    for vid in self._shard_vendor_ids[shard]
                ],
                ad_types=problem.ad_types,
                utility_model=problem.utility_model,
                pair_validator=problem.pair_validator,
                spatial_backend=problem.spatial_backend,
                use_engine=problem._use_engine,
                parallel=problem.parallel_config,
                churn=problem.churn,
                dtype=problem.dtype_policy,
            )
            self._views[shard] = view
        return view

    def resident_view(self, shard: int) -> Optional[MUAAProblem]:
        """The shard's cached view if currently materialised, else
        ``None`` -- never triggers a build (unlike :meth:`problem_for`).
        The identity plan's view is always the problem itself."""
        if self._identity:
            return self._problem
        return self._views.get(shard)

    def release(self, shard: int) -> None:
        """Drop a shard's cached view (and with it its engine state).

        A no-op for the identity plan, which aliases the original
        problem and must never tear it down.
        """
        if not self._identity:
            self._views.pop(shard, None)

    def release_all(self) -> None:
        """Drop every cached shard view."""
        if not self._identity:
            self._views.clear()

    @property
    def resident_shards(self) -> List[int]:
        """Shards whose views are currently materialised."""
        if self._identity:
            return [0]
        return sorted(self._views)

    def route(self, customer: Customer) -> Optional[int]:
        """The shard that should serve one arriving customer.

        Preference order: a *member* shard owning the customer's grid
        cell; else the customer's first member shard; else the owner of
        the customer's cell (for customers outside every vendor's
        range the spatial prior is still the best guess); else ``None``
        (serve from the full problem).
        """
        if self._identity:
            return 0
        members = self._shards_of_customer.get(customer.customer_id)
        cell_owner = self._cell_owner.get(
            self._cell_index(customer.location)
        )
        if members:
            if cell_owner is not None and cell_owner in members:
                return cell_owner
            return members[0]
        return cell_owner

    def move_customer(
        self, customer_id: int, new_location: Tuple[float, float]
    ) -> bool:
        """Relocate a customer through the plan (trajectory scenarios).

        The move is applied to the full problem and to every resident
        member view, then membership is extended *additively*: shards
        whose vendors now cover the new location admit a replica
        through the same delta path a cell migration uses
        (:meth:`MUAAProblem.admit_customers`).  Old memberships are
        kept -- replication is the sharding model, and a stale replica
        is harmless because range queries consult the updated entity.
        Touched shards get a structural version bump so caching layers
        re-resolve the customer's candidate range.
        """
        problem = self._problem
        if not problem.move_customer(customer_id, new_location):
            return False
        if self._identity:
            return True
        moved = problem.customers_by_id[customer_id]
        members = self._shards_of_customer.setdefault(customer_id, [])
        for shard in members:
            view = self._views.get(shard)
            if view is not None:
                view.move_customer(customer_id, moved.location)
        if problem.pair_validator is not None:
            in_range = [
                v.vendor_id
                for v in problem.vendors
                if problem.pair_validator(moved, v)
            ]
        else:
            in_range = valid_vendors(
                moved,
                problem.vendors_by_id,
                problem.vendor_index,
                problem.max_radius,
            )
        touched = set(members)
        crow = self._customer_rows
        covering = sorted(
            {
                self.shard_of_vendor[vid]
                for vid in in_range
                if vid in self.shard_of_vendor
            }
        )
        for shard in covering:
            if shard in members:
                continue
            member_ids = self._shard_customer_ids[shard]
            pos = bisect_left(
                [crow[cid] for cid in member_ids], crow[customer_id]
            )
            member_ids.insert(pos, customer_id)
            insort(members, shard)
            self._refs[shard][customer_id] = sum(
                1
                for vid in in_range
                if self.shard_of_vendor.get(vid) == shard
            )
            view = self._views.get(shard)
            if view is not None:
                view.admit_customers([moved])
            self._move_additions.append((shard, customer_id))
            touched.add(shard)
        for shard in sorted(touched):
            self.shard_versions[shard] += 1
        return True

    def reset_moves(self) -> int:
        """Roll back run-local customer moves through the plan.

        Restores the full problem and every resident view
        (:meth:`MUAAProblem.reset_moves`), and removes the memberships
        customer moves added, so the next run over this plan routes
        exactly as the first one did.  Returns the number of customers
        restored in the full problem.
        """
        count = self._problem.reset_moves()
        for view in self._views.values():
            view.reset_moves()
        if not self._move_additions:
            return count
        touched = set()
        for shard, customer_id in self._move_additions:
            self._refs[shard].pop(customer_id, None)
            try:
                self._shard_customer_ids[shard].remove(customer_id)
            except ValueError:
                pass
            shards = self._shards_of_customer.get(customer_id)
            if shards is not None and shard in shards:
                shards.remove(shard)
                if not shards:
                    del self._shards_of_customer[customer_id]
            touched.add(shard)
        self._move_additions.clear()
        for shard in sorted(touched):
            self.shard_versions[shard] += 1
        return count

    # ------------------------------------------------------------------
    # Live churn (incremental membership; see docs/incremental.md)
    # ------------------------------------------------------------------
    def _vendor_rows(self) -> Dict[int, int]:
        """Vendor id -> current global catalogue row."""
        return {
            v.vendor_id: row for row, v in enumerate(self._problem.vendors)
        }

    def _attach_vendor(
        self, shard: int, vendor: Vendor, in_range: Sequence[int]
    ) -> int:
        """Record a vendor joining ``shard``: shard vendor list (kept in
        global catalogue order), customer refcounts/membership,
        replication, and edge counts.  Returns the vendor's insertion
        position inside the shard's vendor list."""
        rows = self._vendor_rows()
        ids = self._shard_vendor_ids[shard]
        position = bisect_left(
            [rows[vid] for vid in ids], rows[vendor.vendor_id]
        )
        ids.insert(position, vendor.vendor_id)
        refs = self._refs[shard]
        members = self._shard_customer_ids[shard]
        crow = self._customer_rows
        member_rows = [crow[cid] for cid in members]
        for cid in in_range:
            count = refs.get(cid, 0)
            if count == 0:
                pos = bisect_left(member_rows, crow[cid])
                members.insert(pos, cid)
                member_rows.insert(pos, crow[cid])
                insort(self._shards_of_customer.setdefault(cid, []), shard)
            refs[cid] = count + 1
        self._vendor_degrees[vendor.vendor_id] = len(in_range)
        if self._edge_counts is not None:
            self._edge_counts[shard] += len(in_range)
        return position

    def _detach_vendor(
        self, shard: int, vendor_id: int, in_range: Sequence[int]
    ) -> None:
        """Record a vendor leaving ``shard``; customers whose refcount
        drops to zero leave the shard's membership/replication maps."""
        self._shard_vendor_ids[shard].remove(vendor_id)
        refs = self._refs[shard]
        members = self._shard_customer_ids[shard]
        for cid in in_range:
            count = refs.get(cid, 0) - 1
            if count <= 0:
                refs.pop(cid, None)
                try:
                    members.remove(cid)
                except ValueError:
                    pass
                shards = self._shards_of_customer.get(cid)
                if shards is not None and shard in shards:
                    shards.remove(shard)
                    if not shards:
                        del self._shards_of_customer[cid]
            else:
                refs[cid] = count
        degree = self._vendor_degrees.pop(vendor_id, len(in_range))
        if self._edge_counts is not None:
            self._edge_counts[shard] -= degree

    def _commit_event(
        self, event: ChurnEvent, touched: Sequence[int]
    ) -> int:
        """Log one applied event, sync the shared epoch, and bump the
        structural version of every touched shard."""
        epoch = self._churn_log.append(event)
        self._problem.churn.epoch = epoch
        for shard in touched:
            self.shard_versions[shard] += 1
        return epoch

    def migrate_cells(
        self,
        cells: Sequence[Tuple[int, int]],
        src: int,
        dst: int,
        _event: Optional[ChurnEvent] = None,
    ) -> List[ShardDelta]:
        """Move every ``src`` vendor located in ``cells`` to ``dst``,
        rebalancing online.

        Membership, routing, replication and cached views are updated
        incrementally -- untouched shards are not rebuilt, and the two
        touched shards' resident views are spliced (vendors retired
        from ``src``; customers admitted and vendors inserted into
        ``dst`` at catalogue positions) rather than rebuilt.  The
        event is appended to the churn log (one epoch tick).

        Returns the per-shard deltas (for ``src`` and ``dst``) so a
        cluster episode can forward them to out-of-process workers.
        """
        if self._identity:
            raise InvalidProblemError(
                "cell migration needs a non-identity shard plan"
            )
        n = self.n_shards
        if not (0 <= src < n and 0 <= dst < n) or src == dst:
            raise InvalidProblemError(
                f"invalid migration {src} -> {dst} with {n} shards"
            )
        problem = self._problem
        cell_set = {tuple(cell) for cell in cells}
        moved = [
            vid
            for vid in self._shard_vendor_ids[src]
            if self._cell_index(problem.vendors_by_id[vid].location)
            in cell_set
        ]
        event = _event or ChurnEvent(
            kind=KIND_MIGRATE, cells=tuple(sorted(cell_set)), src=src, dst=dst
        )
        if not moved:
            epoch = self._commit_event(event, ())
            return []
        joins: List[VendorJoin] = []
        for vid in moved:
            vendor = problem.vendors_by_id[vid]
            in_range = problem.valid_customer_ids(vendor)
            self._detach_vendor(src, vid, in_range)
            admit_ids = [
                cid for cid in in_range if cid not in self._refs[dst]
            ]
            position = self._attach_vendor(dst, vendor, in_range)
            self.shard_of_vendor[vid] = dst
            joins.append(
                VendorJoin(
                    vendor=vendor,
                    position=position,
                    admit=tuple(
                        problem.customers_by_id[cid] for cid in admit_ids
                    ),
                )
            )
        for cell in cell_set:
            self._cell_owner[cell] = dst
        src_view = self._views.get(src)
        if src_view is not None:
            for vid in moved:
                src_view.retire_vendor(vid)
        dst_view = self._views.get(dst)
        if dst_view is not None:
            for join in joins:
                dst_view.admit_customers(join.admit)
                dst_view.insert_vendor(join.vendor, position=join.position)
        epoch = self._commit_event(event, (src, dst))
        return [
            ShardDelta(shard=src, epoch=epoch, retire=tuple(moved)),
            ShardDelta(shard=dst, epoch=epoch, join=tuple(joins)),
        ]

    def apply_churn(self, event: ChurnEvent) -> List[ShardDelta]:
        """Apply one churn event through the plan, bumping the epoch.

        The global problem, the plan's membership/routing maps, and any
        resident shard views are all updated incrementally; the
        returned :class:`ShardDelta` payloads let a cluster episode
        bring out-of-process shard workers to the same epoch.
        """
        problem = self._problem
        if event.kind == KIND_MIGRATE:
            return self.migrate_cells(
                event.cells, event.src, event.dst, _event=event
            )
        if event.kind == KIND_INSERT:
            vendor = event.vendor
            if self._identity:
                if problem.insert_vendor(vendor):
                    self._shard_vendor_ids[0].append(vendor.vendor_id)
                    self.shard_of_vendor[vendor.vendor_id] = 0
                epoch = self._commit_event(event, (0,))
                return [
                    ShardDelta(
                        shard=0, epoch=epoch,
                        join=(VendorJoin(vendor=vendor),),
                    )
                ]
            if vendor.vendor_id in problem.vendors_by_id:
                epoch = self._commit_event(event, ())
                return []
            cell = self._cell_index(vendor.location)
            dst = self._cell_owner.get(cell)
            if dst is None:
                counts = self.edge_counts()
                dst = counts.index(min(counts))
            problem.insert_vendor(vendor)
            in_range = problem.valid_customer_ids(vendor)
            admit_ids = [
                cid for cid in in_range if cid not in self._refs[dst]
            ]
            position = self._attach_vendor(dst, vendor, in_range)
            self.shard_of_vendor[vendor.vendor_id] = dst
            self._cell_owner.setdefault(cell, dst)
            join = VendorJoin(
                vendor=vendor,
                position=position,
                admit=tuple(
                    problem.customers_by_id[cid] for cid in admit_ids
                ),
            )
            view = self._views.get(dst)
            if view is not None:
                view.admit_customers(join.admit)
                view.insert_vendor(vendor, position=position)
            epoch = self._commit_event(event, (dst,))
            return [ShardDelta(shard=dst, epoch=epoch, join=(join,))]
        if event.kind == KIND_RETIRE:
            vendor_id = event.vendor_id
            if self._identity:
                if problem.retire_vendor(vendor_id):
                    self._shard_vendor_ids[0].remove(vendor_id)
                    self.shard_of_vendor.pop(vendor_id, None)
                epoch = self._commit_event(event, (0,))
                return [
                    ShardDelta(shard=0, epoch=epoch, retire=(vendor_id,))
                ]
            shard = self.shard_of_vendor.pop(vendor_id, None)
            if shard is None:
                epoch = self._commit_event(event, ())
                return []
            vendor = problem.vendors_by_id[vendor_id]
            in_range = problem.valid_customer_ids(vendor)
            problem.retire_vendor(vendor_id)
            self._detach_vendor(shard, vendor_id, in_range)
            view = self._views.get(shard)
            if view is not None:
                view.retire_vendor(vendor_id)
            epoch = self._commit_event(event, (shard,))
            return [ShardDelta(shard=shard, epoch=epoch, retire=(vendor_id,))]
        if event.kind == KIND_DEACTIVATE:
            vendor_id = event.vendor_id
            shard = 0 if self._identity else self.shard_of_vendor.get(
                vendor_id
            )
            problem.deactivate_vendors([vendor_id])
            if shard is not None and not self._identity:
                view = self._views.get(shard)
                if view is not None and view.engine is not None:
                    view.engine.deactivate_exhausted([vendor_id])
            # Set-only at the membership level: no structural change,
            # so no version bump and untouched caches stay valid.
            epoch = self._commit_event(event, ())
            if shard is None:
                return []
            return [
                ShardDelta(shard=shard, epoch=epoch, deactivate=(vendor_id,))
            ]
        raise InvalidProblemError(f"unknown churn event kind {event.kind!r}")

    # ------------------------------------------------------------------
    # Metadata round-trip
    # ------------------------------------------------------------------
    def to_metadata(self) -> Dict:
        """A JSON-ready document describing the partition.

        Only the vendor grouping and cell size are stored; customer
        memberships, replication and edge counts are derived, so a
        reloaded plan is rebuilt from the same invariants rather than
        trusted from the document.
        """
        return {
            "schema_version": METADATA_SCHEMA_VERSION,
            "n_shards": self.n_shards,
            "cell_size": self._cell_size,
            "shard_vendors": [list(ids) for ids in self._shard_vendor_ids],
            "churn_epoch": self.epoch,
        }

    @classmethod
    def from_metadata(cls, problem: MUAAProblem, doc: Dict) -> "ShardPlan":
        """Rebuild a plan from :meth:`to_metadata` output.

        Accepts schema versions 1 (pre-churn; epoch 0) and 2.  The
        vendor grouping stored is the *post-churn* one, so a reloaded
        plan reproduces the current partition without replaying events.

        Raises:
            InvalidProblemError: On an unknown schema version, a vendor
                id the problem does not know, or an incomplete cover.
        """
        version = doc.get("schema_version")
        if version not in (1, METADATA_SCHEMA_VERSION):
            raise InvalidProblemError(
                f"unsupported shard-plan schema version {version!r}"
            )
        shard_vendors = doc.get("shard_vendors")
        if not isinstance(shard_vendors, list) or not shard_vendors:
            raise InvalidProblemError("shard metadata misses shard_vendors")
        return cls(
            problem,
            float(doc["cell_size"]),
            shard_vendors,
            churn_epoch=int(doc.get("churn_epoch", 0)),
        )

    def save(self, path) -> "Path":
        """Persist the plan as a store artifact (see ``docs/scale.md``).

        Delegates to :func:`repro.store.save_plan`: the
        :meth:`to_metadata` document wrapped in a provenance envelope
        (dtype policy, git sha, churn epoch).
        """
        from repro.store import save_plan

        return save_plan(self, path)

    @classmethod
    def load(cls, path, problem: MUAAProblem) -> "ShardPlan":
        """Rebuild a saved plan against ``problem``.

        Delegates to :func:`repro.store.load_plan`, which validates the
        envelope (kind, store schema, churn epoch) before handing the
        inner document to :meth:`from_metadata`.
        """
        from repro.store import load_plan

        return load_plan(path, problem)


def _balanced_groups(counts: Sequence[int], shards: int) -> List[List[int]]:
    """Group contiguous cell positions into at most ``shards`` runs.

    Cells (already in lexicographic order) are walked once; a group is
    closed when adding the next cell would move its vendor count away
    from the adaptive target ``remaining / shards_left``, while always
    leaving at least one cell for every remaining shard.  Deterministic
    in the cell counts alone.
    """
    groups: List[List[int]] = []
    remaining = sum(counts)
    position = 0
    n_cells = len(counts)
    for group_index in range(shards):
        if position >= n_cells:
            break
        shards_left = shards - group_index
        target = remaining / shards_left
        group: List[int] = []
        acc = 0
        while position < n_cells:
            if group and (n_cells - position) <= (shards_left - 1):
                break
            step = counts[position]
            if group and abs(acc + step - target) >= abs(acc - target):
                break
            group.append(position)
            acc += step
            position += 1
        groups.append(group)
        remaining -= acc
    return groups


def resolve_plan(
    problem: MUAAProblem,
    shards: int = 1,
    shard_plan: Optional[ShardPlan] = None,
) -> Optional[ShardPlan]:
    """The active plan for a solver call, or ``None`` for unsharded.

    A supplied plan wins over a ``shards`` count; identity plans (and
    ``shards <= 1``) resolve to ``None`` so callers fall through to
    their original, byte-identical code path.
    """
    if shard_plan is not None:
        if shard_plan.problem is not problem:
            raise InvalidProblemError(
                "shard plan was built for a different problem instance"
            )
        return None if shard_plan.is_identity else shard_plan
    if shards <= 1:
        return None
    plan = ShardPlan.build(problem, shards)
    return None if plan.is_identity else plan
