"""Spatial sharding: partition one MUAA problem into cell-group shards.

The layer between the core model and the solvers that lets everything
downstream operate on one shard at a time:

* :class:`ShardPlan` -- grid-cell vendor partition (cell size >= max
  vendor radius), replicated customers, lazily-built per-shard problem
  views, streaming-arrival routing, and a JSON metadata round-trip;
* :mod:`repro.sharding.solvers` -- shard-local candidate extraction
  and the global greedy sweep the sharded solvers share;
* :class:`repro.engine.sharded.ShardedEngine` -- the compute-engine
  facade over a plan (re-exported here for discoverability).

See ``docs/sharding.md`` for the partition rules, the
replication/reconciliation semantics, and the memory model.
"""

from repro.sharding.plan import (
    METADATA_SCHEMA_VERSION,
    ShardPlan,
    resolve_plan,
)
from repro.sharding.solvers import (
    concat_columns,
    greedy_sweep,
    shard_candidate_columns,
)

__all__ = [
    "METADATA_SCHEMA_VERSION",
    "ShardPlan",
    "resolve_plan",
    "concat_columns",
    "greedy_sweep",
    "shard_candidate_columns",
]
