"""Weighted temporal Pearson preference :math:`s(u_i, v_j, \\varphi)` (Eq. 5).

The preference of a customer for a vendor at time :math:`\\varphi` is
the Pearson correlation of their tag vectors, weighted by the per-tag
activity levels :math:`\\alpha_x(\\varphi)` -- i.e. tags that are active
right now dominate the similarity.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

#: Variance below this is treated as zero (constant vector under weights).
#: Shared with the vectorized kernels in :mod:`repro.engine.kernels` so
#: the scalar and columnar paths agree on degenerate vectors.
VARIANCE_EPS = 1e-15

#: Backwards-compatible alias.
_VARIANCE_EPS = VARIANCE_EPS


def weighted_mean(vector: np.ndarray, weights: np.ndarray) -> float:
    """Weighted mean :math:`m(\\psi, \\varphi)` of Eq. 5."""
    total = float(weights.sum())
    if total <= 0:
        raise ValueError("activity weights must have positive sum")
    return float(np.dot(weights, vector)) / total


def weighted_covariance(
    a: np.ndarray, b: np.ndarray, weights: np.ndarray
) -> float:
    """Weighted covariance :math:`cov(\\psi_i, \\psi_j, \\varphi)` of Eq. 5."""
    total = float(weights.sum())
    if total <= 0:
        raise ValueError("activity weights must have positive sum")
    da = a - weighted_mean(a, weights)
    db = b - weighted_mean(b, weights)
    return float(np.dot(weights, da * db)) / total


def weighted_pearson(
    a: np.ndarray, b: np.ndarray, weights: Optional[np.ndarray] = None
) -> float:
    """Weighted Pearson correlation of two tag vectors (Eq. 5).

    Args:
        a: Customer interest vector :math:`\\psi_i`.
        b: Vendor tag vector :math:`\\psi_j`.
        weights: Activity weights :math:`\\alpha_x(\\varphi)`; uniform
            when omitted.

    Returns:
        A correlation in ``[-1, 1]``; 0 when either vector is constant
        under the weights (undefined correlation).

    Raises:
        ValueError: On mismatched shapes or non-positive weight sum.
    """
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if weights is None:
        weights = np.ones_like(a, dtype=float)
    if weights.shape != a.shape:
        raise ValueError(
            f"weights shape {weights.shape} does not match vectors {a.shape}"
        )
    # Single fused pass (the naive three-covariance formulation walks
    # the vectors nine times; this is the hot path of Eq. 4).
    total = float(weights.sum())
    if total <= 0:
        raise ValueError("activity weights must have positive sum")
    da = a - float(np.dot(weights, a)) / total
    db = b - float(np.dot(weights, b)) / total
    var_a = float(np.dot(weights, da * da)) / total
    var_b = float(np.dot(weights, db * db)) / total
    if var_a <= _VARIANCE_EPS or var_b <= _VARIANCE_EPS:
        return 0.0
    cov = float(np.dot(weights, da * db)) / total
    corr = cov / math.sqrt(var_a * var_b)
    # Clamp tiny float excursions outside [-1, 1].
    return max(-1.0, min(1.0, corr))


def positive_preference(
    a: np.ndarray, b: np.ndarray, weights: Optional[np.ndarray] = None
) -> float:
    """Pearson preference clipped to ``[0, 1]``.

    Negative correlation means the vendor actively mismatches the
    customer's current interests; such pairs carry zero (not negative)
    advertising value, matching the paper's non-negative utilities.
    """
    return max(0.0, weighted_pearson(a, b, weights))
