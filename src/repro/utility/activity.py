"""Temporal tag-activity model :math:`\\alpha_x(\\varphi)` (Section II-B).

The paper weights the Pearson correlation between customer and vendor
tag vectors by per-tag *activity levels* that vary over the day: coffee
is active in the morning, Chinese food at lunch and dinner, nightlife in
the evening.  This module provides:

* :class:`ActivityProfile` -- a smooth 24-hour activity curve built from
  Gaussian bumps around peak hours;
* :class:`ActivityModel` -- per-tag activity lookup with sensible
  defaults for the built-in Foursquare-style taxonomy (subcategories
  inherit their top-level category's profile); and
* :data:`UNIFORM_ACTIVITY` -- the degenerate always-on model, under
  which Eq. 5 reduces to the plain Pearson correlation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.taxonomy.tree import Taxonomy

#: Hours in a day; timestamps are taken modulo this.
DAY_HOURS = 24.0

#: Activity floor so no tag is ever fully inactive (keeps Eq. 5 defined).
ACTIVITY_FLOOR = 0.05


def _circular_hour_gap(a: float, b: float) -> float:
    """Shortest distance between two hours on the 24 h circle."""
    raw = abs(a - b) % DAY_HOURS
    return min(raw, DAY_HOURS - raw)


@dataclass(frozen=True)
class ActivityProfile:
    """A 24-hour activity curve as a mixture of circular Gaussian bumps.

    Attributes:
        peaks: ``(hour, width, height)`` triples; at time t the bump
            contributes ``height * exp(-gap(t, hour)^2 / (2 width^2))``.
        floor: Minimum activity at any hour.
    """

    peaks: Tuple[Tuple[float, float, float], ...]
    floor: float = ACTIVITY_FLOOR

    def activity(self, hour: float) -> float:
        """Activity level at ``hour`` (taken mod 24), clipped to [floor, 1]."""
        hour = hour % DAY_HOURS
        level = self.floor
        for peak_hour, width, height in self.peaks:
            gap = _circular_hour_gap(hour, peak_hour)
            level += height * math.exp(-(gap * gap) / (2.0 * width * width))
        return min(level, 1.0)


#: Flat profile: every tag fully active at all times.
FLAT_PROFILE = ActivityProfile(peaks=(), floor=1.0)

#: Default diurnal profiles per built-in top-level category.
DEFAULT_CATEGORY_PROFILES: Dict[str, ActivityProfile] = {
    "Arts & Entertainment": ActivityProfile(
        peaks=((15.0, 3.0, 0.5), (20.0, 2.5, 0.6))
    ),
    "College & University": ActivityProfile(
        peaks=((10.0, 2.5, 0.7), (15.0, 2.5, 0.6))
    ),
    "Food": ActivityProfile(
        peaks=((8.0, 1.5, 0.5), (12.5, 1.5, 0.9), (19.0, 1.8, 0.9))
    ),
    "Nightlife Spot": ActivityProfile(
        peaks=((22.0, 2.5, 0.95), (1.0, 2.0, 0.6))
    ),
    "Outdoors & Recreation": ActivityProfile(
        peaks=((7.5, 2.0, 0.6), (17.5, 2.5, 0.7))
    ),
    "Professional & Other Places": ActivityProfile(
        peaks=((9.5, 2.0, 0.9), (14.5, 2.5, 0.8))
    ),
    "Residence": ActivityProfile(
        peaks=((7.0, 2.0, 0.5), (21.0, 3.0, 0.8))
    ),
    "Shop & Service": ActivityProfile(
        peaks=((11.0, 2.5, 0.7), (17.0, 3.0, 0.8))
    ),
    "Travel & Transport": ActivityProfile(
        peaks=((8.0, 1.5, 0.9), (18.0, 1.5, 0.9))
    ),
}


class ActivityModel:
    """Per-tag temporal activity :math:`\\alpha_x(\\varphi)`.

    Each tag is assigned an :class:`ActivityProfile`; tags without an
    explicit profile inherit their top-level ancestor's profile when the
    taxonomy is supplied, and fall back to ``default_profile`` otherwise.

    Args:
        taxonomy: Tag taxonomy used for profile inheritance.
        profiles: Explicit tag -> profile overrides.
        default_profile: Fallback profile (flat by default).
    """

    def __init__(
        self,
        taxonomy: Taxonomy,
        profiles: Optional[Dict[str, ActivityProfile]] = None,
        default_profile: ActivityProfile = FLAT_PROFILE,
    ) -> None:
        self._taxonomy = taxonomy
        self._profiles = dict(profiles or {})
        self._default = default_profile
        self._resolved: Dict[str, ActivityProfile] = {}

    @classmethod
    def diurnal(cls, taxonomy: Taxonomy) -> "ActivityModel":
        """The default diurnal model for the built-in taxonomy."""
        return cls(taxonomy, profiles=dict(DEFAULT_CATEGORY_PROFILES))

    @classmethod
    def uniform(cls, taxonomy: Taxonomy) -> "ActivityModel":
        """Always-on model: Eq. 5 degenerates to plain Pearson."""
        return cls(taxonomy, default_profile=FLAT_PROFILE)

    def _resolve(self, tag: str) -> ActivityProfile:
        cached = self._resolved.get(tag)
        if cached is not None:
            return cached
        profile = self._profiles.get(tag)
        if profile is None:
            top = self._taxonomy.ancestor_at_depth(tag, depth=1)
            profile = self._profiles.get(top, self._default)
        self._resolved[tag] = profile
        return profile

    def activity(self, tag: str, hour: float) -> float:
        """Activity :math:`\\alpha_x(\\varphi)` of one tag at one hour."""
        return self._resolve(tag).activity(hour)

    def activity_vector(self, hour: float) -> np.ndarray:
        """Activities of all tags at one hour, in taxonomy index order."""
        return np.array(
            [self._resolve(tag).activity(hour) for tag in self._taxonomy.tags]
        )

    def activity_matrix(self, hours: Sequence[float]) -> np.ndarray:
        """``(len(hours), n_tags)`` matrix of activities, for sweeps."""
        return np.stack([self.activity_vector(h) for h in hours])
