"""Utility models implementing Eq. 4 of the paper.

The utility of an ad instance is

.. math::

    \\lambda_{ijk} = p_i \\cdot \\beta_k \\cdot
        \\frac{s(u_i, v_j, \\varphi)}{d(u_i, v_j, \\varphi)}

Only :math:`\\beta_k` depends on the ad type, so every model exposes a
*pair base* :math:`p_i \\cdot s / d` that is computed once per
customer-vendor pair and cached; the per-type utility is then a single
multiplication.  This mirrors how the paper's algorithms pick the "best"
ad type per pair cheaply.

Two concrete models:

* :class:`TaxonomyUtilityModel` -- the full pipeline of Section II
  (interest vectors, activity-weighted Pearson, distance).
* :class:`TabularUtilityModel` -- preferences and distances supplied
  directly as tables; used for the paper's worked example (Tables I/II)
  and for property tests with hand-crafted utilities.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Mapping, Optional, Tuple

from repro.core.entities import AdType, Customer, Vendor, distance
from repro.utility.activity import ActivityModel
from repro.utility.preference import positive_preference

#: Distances below this are clamped to keep Eq. 4 bounded (a customer
#: standing exactly on a vendor would otherwise have infinite utility).
#: In the unit-square convention this is tens of metres of a city-sized
#: map -- closer than that, "distance to the shop" stops being the
#: thing that attenuates an ad's effect.
MIN_DISTANCE = 1e-3


class UtilityModel(ABC):
    """Interface every utility model implements."""

    #: Eq. 4 models factor as ``pair_base * effectiveness``; fast paths
    #: exploit that.  A model whose utility depends on the ad type in
    #: any other way (e.g. the knapsack-reduction's item locking) must
    #: set this True so callers evaluate :meth:`utility` per type.
    type_sensitive: bool = False

    @abstractmethod
    def pair_base(self, customer: Customer, vendor: Vendor) -> float:
        """The type-independent factor :math:`p_i \\cdot s / d` of Eq. 4."""

    def utility(
        self, customer: Customer, vendor: Vendor, ad_type: AdType
    ) -> float:
        """Utility :math:`\\lambda_{ijk}` of one ad instance (Eq. 4)."""
        return self.pair_base(customer, vendor) * ad_type.effectiveness

    def efficiency(
        self, customer: Customer, vendor: Vendor, ad_type: AdType
    ) -> float:
        """Budget efficiency :math:`\\gamma_{ijk} = \\lambda_{ijk}/c_k`."""
        return self.utility(customer, vendor, ad_type) / ad_type.cost


class DelegatingUtilityModel(UtilityModel):
    """A utility model that forwards everything to an inner model.

    Base class for decorators around a utility model -- fault injectors,
    resilience guards, caching layers -- that want to intercept calls
    without re-implementing Eq. 4.  Subclasses typically override
    :meth:`pair_base` (and :meth:`utility` when the inner model is
    type-sensitive) and delegate via ``self.inner``.

    Args:
        inner: The wrapped utility model.
    """

    def __init__(self, inner: UtilityModel) -> None:
        self.inner = inner

    @property
    def type_sensitive(self) -> bool:  # type: ignore[override]
        return self.inner.type_sensitive

    def pair_base(self, customer: Customer, vendor: Vendor) -> float:
        return self.inner.pair_base(customer, vendor)

    def utility(
        self, customer: Customer, vendor: Vendor, ad_type: AdType
    ) -> float:
        return self.inner.utility(customer, vendor, ad_type)


class TaxonomyUtilityModel(UtilityModel):
    """Eq. 4 with the full Section II pipeline.

    Args:
        activity_model: Per-tag temporal activity (drives Eq. 5 weights).
        time_resolution_hours: Activity vectors are cached on a grid of
            this resolution; 0.25 h is far finer than the diurnal curves
            vary, so the cache is exact for practical purposes.
        min_distance: Clamp for the distance denominator.
    """

    def __init__(
        self,
        activity_model: ActivityModel,
        time_resolution_hours: float = 0.25,
        min_distance: float = MIN_DISTANCE,
    ) -> None:
        if time_resolution_hours <= 0:
            raise ValueError("time_resolution_hours must be positive")
        self._activity = activity_model
        self._resolution = time_resolution_hours
        self._min_distance = min_distance
        self._weights_cache: Dict[int, "object"] = {}
        self._pair_cache: Dict[Tuple[int, int], float] = {}

    def _weights_at(self, hour: float):
        bucket = int(round((hour % 24.0) / self._resolution))
        weights = self._weights_cache.get(bucket)
        if weights is None:
            weights = self._activity.activity_vector(bucket * self._resolution)
            self._weights_cache[bucket] = weights
        return weights

    def preference(self, customer: Customer, vendor: Vendor) -> float:
        """Temporal preference :math:`s(u_i, v_j, \\varphi)` (Eq. 5),
        clipped to non-negative values."""
        if customer.interests is None or vendor.tags is None:
            raise ValueError(
                "taxonomy utility model needs interest/tag vectors on both "
                "entities; use TabularUtilityModel for direct preferences"
            )
        weights = self._weights_at(customer.arrival_time)
        return positive_preference(customer.interests, vendor.tags, weights)

    def pair_base(self, customer: Customer, vendor: Vendor) -> float:
        key = (customer.customer_id, vendor.vendor_id)
        base = self._pair_cache.get(key)
        if base is None:
            dist = max(distance(customer, vendor), self._min_distance)
            base = (
                customer.view_probability
                * self.preference(customer, vendor)
                / dist
            )
            self._pair_cache[key] = base
        return base


class TabularUtilityModel(UtilityModel):
    """Eq. 4 with preferences (and optionally distances) given as tables.

    This reproduces the worked example of the paper exactly: Table II
    lists raw preference values and distances per pair, and the utility
    of e.g. a photo-link ad of :math:`v_2` to :math:`u_3` evaluates to
    :math:`0.15 \\times 0.4 \\times 0.9 / 7.5 = 0.0072`.

    Args:
        preferences: ``(customer_id, vendor_id)`` -> preference value.
        distances: Optional ``(customer_id, vendor_id)`` -> distance
            overriding the geometric distance (the paper's example uses
            its own distance table).
        default_preference: Value for pairs missing from the table.
        min_distance: Clamp for the distance denominator.
    """

    def __init__(
        self,
        preferences: Mapping[Tuple[int, int], float],
        distances: Optional[Mapping[Tuple[int, int], float]] = None,
        default_preference: float = 0.0,
        min_distance: float = MIN_DISTANCE,
    ) -> None:
        self._preferences = dict(preferences)
        self._distances = dict(distances) if distances is not None else None
        self._default = default_preference
        self._min_distance = min_distance

    def preference(self, customer: Customer, vendor: Vendor) -> float:
        """The tabulated preference of the pair."""
        key = (customer.customer_id, vendor.vendor_id)
        return self._preferences.get(key, self._default)

    def _distance(self, customer: Customer, vendor: Vendor) -> float:
        if self._distances is not None:
            key = (customer.customer_id, vendor.vendor_id)
            if key in self._distances:
                return self._distances[key]
        return distance(customer, vendor)

    def pair_base(self, customer: Customer, vendor: Vendor) -> float:
        dist = max(self._distance(customer, vendor), self._min_distance)
        return (
            customer.view_probability
            * self.preference(customer, vendor)
            / dist
        )
