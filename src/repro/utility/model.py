"""Utility models implementing Eq. 4 of the paper.

The utility of an ad instance is

.. math::

    \\lambda_{ijk} = p_i \\cdot \\beta_k \\cdot
        \\frac{s(u_i, v_j, \\varphi)}{d(u_i, v_j, \\varphi)}

Only :math:`\\beta_k` depends on the ad type, so every model exposes a
*pair base* :math:`p_i \\cdot s / d` that is computed once per
customer-vendor pair and cached; the per-type utility is then a single
multiplication.  This mirrors how the paper's algorithms pick the "best"
ad type per pair cheaply.

Two concrete models:

* :class:`TaxonomyUtilityModel` -- the full pipeline of Section II
  (interest vectors, activity-weighted Pearson, distance).
* :class:`TabularUtilityModel` -- preferences and distances supplied
  directly as tables; used for the paper's worked example (Tables I/II)
  and for property tests with hand-crafted utilities.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Mapping, Optional, Tuple

from repro.core.entities import AdType, Customer, Vendor, distance
from repro.utility.activity import ActivityModel
from repro.utility.preference import positive_preference

#: Distances below this are clamped to keep Eq. 4 bounded (a customer
#: standing exactly on a vendor would otherwise have infinite utility).
#: In the unit-square convention this is tens of metres of a city-sized
#: map -- closer than that, "distance to the shop" stops being the
#: thing that attenuates an ad's effect.
MIN_DISTANCE = 1e-3

#: Default bound on the number of cached pair bases / weight vectors.
#: A long streaming run touches an unbounded set of (customer, vendor)
#: pairs; without a bound the cache grows with the stream.
DEFAULT_MAX_CACHE_ENTRIES = 1 << 20


def clamp_distance(dist: float, min_distance: float = MIN_DISTANCE) -> float:
    """The Eq. 4 denominator clamp, in its single authoritative place.

    Both the scalar models below and the vectorized kernels in
    :mod:`repro.engine.kernels` route their clamping through this
    definition (the kernels apply the same ``max`` element-wise with the
    model's :attr:`UtilityModel.min_distance`), so the two paths cannot
    drift apart.
    """
    return max(dist, min_distance)


class UtilityModel(ABC):
    """Interface every utility model implements."""

    #: Eq. 4 models factor as ``pair_base * effectiveness``; fast paths
    #: exploit that.  A model whose utility depends on the ad type in
    #: any other way (e.g. the knapsack-reduction's item locking) must
    #: set this True so callers evaluate :meth:`utility` per type.
    type_sensitive: bool = False

    @property
    def min_distance(self) -> float:
        """The clamp applied to Eq. 4's distance denominator."""
        return MIN_DISTANCE

    @abstractmethod
    def pair_base(self, customer: Customer, vendor: Vendor) -> float:
        """The type-independent factor :math:`p_i \\cdot s / d` of Eq. 4."""

    def utility(
        self, customer: Customer, vendor: Vendor, ad_type: AdType
    ) -> float:
        """Utility :math:`\\lambda_{ijk}` of one ad instance (Eq. 4)."""
        return self.pair_base(customer, vendor) * ad_type.effectiveness

    def efficiency(
        self, customer: Customer, vendor: Vendor, ad_type: AdType
    ) -> float:
        """Budget efficiency :math:`\\gamma_{ijk} = \\lambda_{ijk}/c_k`."""
        return self.utility(customer, vendor, ad_type) / ad_type.cost


class DelegatingUtilityModel(UtilityModel):
    """A utility model that forwards everything to an inner model.

    Base class for decorators around a utility model -- fault injectors,
    resilience guards, caching layers -- that want to intercept calls
    without re-implementing Eq. 4.  Subclasses typically override
    :meth:`pair_base` (and :meth:`utility` when the inner model is
    type-sensitive) and delegate via ``self.inner``.

    Args:
        inner: The wrapped utility model.
    """

    def __init__(self, inner: UtilityModel) -> None:
        self.inner = inner

    @property
    def type_sensitive(self) -> bool:  # type: ignore[override]
        return self.inner.type_sensitive

    @property
    def min_distance(self) -> float:
        return self.inner.min_distance

    def pair_base(self, customer: Customer, vendor: Vendor) -> float:
        return self.inner.pair_base(customer, vendor)

    def utility(
        self, customer: Customer, vendor: Vendor, ad_type: AdType
    ) -> float:
        return self.inner.utility(customer, vendor, ad_type)


class TaxonomyUtilityModel(UtilityModel):
    """Eq. 4 with the full Section II pipeline.

    Args:
        activity_model: Per-tag temporal activity (drives Eq. 5 weights).
        time_resolution_hours: Activity vectors are cached on a grid of
            this resolution; 0.25 h is far finer than the diurnal curves
            vary, so the cache is exact for practical purposes.
        min_distance: Clamp for the distance denominator.
        max_cache_entries: Bound on each internal cache (pair bases and
            activity-weight vectors).  A cache that would exceed the
            bound is cleared before inserting -- entries are cheap to
            recompute, so clear-on-overflow keeps a long streaming run's
            memory flat without LRU bookkeeping on the hot path.

    Raises:
        ValueError: On a non-positive resolution or cache bound.
    """

    def __init__(
        self,
        activity_model: ActivityModel,
        time_resolution_hours: float = 0.25,
        min_distance: float = MIN_DISTANCE,
        max_cache_entries: int = DEFAULT_MAX_CACHE_ENTRIES,
    ) -> None:
        if time_resolution_hours <= 0:
            raise ValueError("time_resolution_hours must be positive")
        if max_cache_entries <= 0:
            raise ValueError("max_cache_entries must be positive")
        self._activity = activity_model
        self._resolution = time_resolution_hours
        self._min_distance = min_distance
        self._max_cache_entries = max_cache_entries
        self._weights_cache: Dict[int, "object"] = {}
        self._pair_cache: Dict[Tuple[int, int], float] = {}
        #: Times either cache hit its bound and was cleared.
        self.cache_clears: int = 0

    @property
    def min_distance(self) -> float:
        return self._min_distance

    @property
    def max_cache_entries(self) -> int:
        """The configured bound on each internal cache."""
        return self._max_cache_entries

    @property
    def time_resolution_hours(self) -> float:
        """Resolution of the activity-weight time grid."""
        return self._resolution

    def _cache_put(self, cache: Dict, key, value) -> None:
        if len(cache) >= self._max_cache_entries:
            cache.clear()
            self.cache_clears += 1
        cache[key] = value

    def time_bucket(self, hour: float) -> int:
        """The weight-grid bucket an hour falls into."""
        return int(round((hour % 24.0) / self._resolution))

    def weights_for_bucket(self, bucket: int):
        """Activity weights of one time-grid bucket.

        The vectorized engine evaluates edges bucket-by-bucket through
        this same accessor, so both paths see identical weight vectors.
        """
        weights = self._weights_cache.get(bucket)
        if weights is None:
            weights = self._activity.activity_vector(bucket * self._resolution)
            self._cache_put(self._weights_cache, bucket, weights)
        return weights

    def weights_at(self, hour: float):
        """Activity weights :math:`\\alpha_x(\\varphi)` on the time grid."""
        return self.weights_for_bucket(self.time_bucket(hour))

    # Backwards-compatible private name.
    _weights_at = weights_at

    def preference(self, customer: Customer, vendor: Vendor) -> float:
        """Temporal preference :math:`s(u_i, v_j, \\varphi)` (Eq. 5),
        clipped to non-negative values."""
        if customer.interests is None or vendor.tags is None:
            raise ValueError(
                "taxonomy utility model needs interest/tag vectors on both "
                "entities; use TabularUtilityModel for direct preferences"
            )
        weights = self.weights_at(customer.arrival_time)
        return positive_preference(customer.interests, vendor.tags, weights)

    def pair_base(self, customer: Customer, vendor: Vendor) -> float:
        key = (customer.customer_id, vendor.vendor_id)
        base = self._pair_cache.get(key)
        if base is None:
            dist = clamp_distance(distance(customer, vendor), self._min_distance)
            base = (
                customer.view_probability
                * self.preference(customer, vendor)
                / dist
            )
            self._cache_put(self._pair_cache, key, base)
        return base


class TabularUtilityModel(UtilityModel):
    """Eq. 4 with preferences (and optionally distances) given as tables.

    This reproduces the worked example of the paper exactly: Table II
    lists raw preference values and distances per pair, and the utility
    of e.g. a photo-link ad of :math:`v_2` to :math:`u_3` evaluates to
    :math:`0.15 \\times 0.4 \\times 0.9 / 7.5 = 0.0072`.

    Args:
        preferences: ``(customer_id, vendor_id)`` -> preference value.
        distances: Optional ``(customer_id, vendor_id)`` -> distance
            overriding the geometric distance (the paper's example uses
            its own distance table).
        default_preference: Value for pairs missing from the table.
        min_distance: Clamp for the distance denominator.
    """

    def __init__(
        self,
        preferences: Mapping[Tuple[int, int], float],
        distances: Optional[Mapping[Tuple[int, int], float]] = None,
        default_preference: float = 0.0,
        min_distance: float = MIN_DISTANCE,
    ) -> None:
        self._preferences = dict(preferences)
        self._distances = dict(distances) if distances is not None else None
        self._default = default_preference
        self._min_distance = min_distance

    @property
    def min_distance(self) -> float:
        return self._min_distance

    @property
    def preference_table(self) -> Mapping[Tuple[int, int], float]:
        """The per-pair preference table (read-only view for the engine)."""
        return self._preferences

    @property
    def distance_table(self) -> Optional[Mapping[Tuple[int, int], float]]:
        """The per-pair distance overrides, or ``None``."""
        return self._distances

    @property
    def default_preference(self) -> float:
        """Preference used for pairs missing from the table."""
        return self._default

    def preference(self, customer: Customer, vendor: Vendor) -> float:
        """The tabulated preference of the pair."""
        key = (customer.customer_id, vendor.vendor_id)
        return self._preferences.get(key, self._default)

    def _distance(self, customer: Customer, vendor: Vendor) -> float:
        if self._distances is not None:
            key = (customer.customer_id, vendor.vendor_id)
            if key in self._distances:
                return self._distances[key]
        return distance(customer, vendor)

    def pair_base(self, customer: Customer, vendor: Vendor) -> float:
        dist = clamp_distance(self._distance(customer, vendor), self._min_distance)
        return (
            customer.view_probability
            * self.preference(customer, vendor)
            / dist
        )
