"""Utility modelling: temporal activity, Eq. 5 preference, Eq. 4 utility."""

from repro.utility.activity import (
    ACTIVITY_FLOOR,
    DAY_HOURS,
    DEFAULT_CATEGORY_PROFILES,
    FLAT_PROFILE,
    ActivityModel,
    ActivityProfile,
)
from repro.utility.model import (
    MIN_DISTANCE,
    DelegatingUtilityModel,
    TabularUtilityModel,
    TaxonomyUtilityModel,
    UtilityModel,
)
from repro.utility.preference import (
    positive_preference,
    weighted_covariance,
    weighted_mean,
    weighted_pearson,
)

__all__ = [
    "ACTIVITY_FLOOR",
    "DAY_HOURS",
    "DEFAULT_CATEGORY_PROFILES",
    "FLAT_PROFILE",
    "ActivityModel",
    "ActivityProfile",
    "MIN_DISTANCE",
    "DelegatingUtilityModel",
    "TabularUtilityModel",
    "TaxonomyUtilityModel",
    "UtilityModel",
    "positive_preference",
    "weighted_covariance",
    "weighted_mean",
    "weighted_pearson",
]
