"""Unified entry point for the MCKP solver backends.

RECON solves one MCKP per vendor; this dispatcher lets callers (and the
solver-ablation benchmark) pick the backend by name:

* ``"greedy-lp"`` -- greedy LP-relaxation rounding (fast, default);
* ``"fptas"``     -- profit-scaling DP with a (1-epsilon) guarantee;
* ``"dp"``        -- exact cost-axis DP (integer-ish costs);
* ``"bb"``        -- exact branch-and-bound (real costs);
* ``"lp-simplex"`` -- LP relaxation via the generic simplex, rounded the
  same way as ``greedy-lp`` (cross-validation path).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.exceptions import SolverError
from repro.lp.model import LinearProgram
from repro.mckp.branch_and_bound import solve_branch_and_bound
from repro.mckp.dynamic_programming import solve_dp_by_cost, solve_fptas
from repro.mckp.items import MCKPInstance, MCKPSolution
from repro.mckp.lp_relaxation import solve_greedy, solve_lp_relaxation

#: Names accepted by :func:`solve`.
SOLVER_NAMES = ("greedy-lp", "fptas", "dp", "bb", "lp-simplex")


def lp_value_via_simplex(instance: MCKPInstance) -> float:
    """Exact LP-relaxation value computed with the generic simplex.

    This is the cross-validation path: it must agree with
    :func:`repro.mckp.lp_relaxation.solve_lp_relaxation`'s ``lp_value``.
    """
    lp = LinearProgram()
    for class_id, items in instance.classes.items():
        for item in items:
            lp.add_variable((class_id, item.item_id), objective=item.profit)
    if lp.n_variables == 0:
        return 0.0
    # sum_k x_ik <= 1 per class.
    for class_id, items in instance.classes.items():
        lp.add_constraint(
            {(class_id, item.item_id): 1.0 for item in items}, bound=1.0
        )
    # Budget constraint.
    lp.add_constraint(
        {
            (class_id, item.item_id): item.cost
            for class_id, items in instance.classes.items()
            for item in items
        },
        bound=instance.budget,
    )
    # x <= 1 is implied by the class constraints; x >= 0 is built in.
    return lp.solve().objective


def _solve_via_simplex(instance: MCKPInstance) -> MCKPSolution:
    solution = solve_greedy(instance)
    solution.upper_bound = lp_value_via_simplex(instance)
    return solution


_BACKENDS: Dict[str, Callable[[MCKPInstance], MCKPSolution]] = {
    "greedy-lp": solve_greedy,
    "fptas": solve_fptas,
    "dp": solve_dp_by_cost,
    "bb": solve_branch_and_bound,
    "lp-simplex": _solve_via_simplex,
}


def solve(instance: MCKPInstance, method: str = "greedy-lp") -> MCKPSolution:
    """Solve an MCKP instance with the named backend.

    Raises:
        SolverError: On an unknown method name.
    """
    try:
        backend = _BACKENDS[method]
    except KeyError:
        raise SolverError(
            f"unknown MCKP solver {method!r}; choose from {SOLVER_NAMES}"
        ) from None
    return backend(instance)
