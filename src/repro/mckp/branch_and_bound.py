"""Exact branch-and-bound for the MCKP with real-valued costs.

Depth-first branching over classes (ordered by best item efficiency),
bounded by the greedy LP relaxation of the remaining subproblem.  Used
for exact optima on small-to-moderate instances, e.g. when measuring
empirical approximation ratios against Theorem III.1.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.exceptions import SolverError
from repro.mckp.dominance import remove_lp_dominated
from repro.mckp.items import MCKPInstance, MCKPItem, MCKPSolution

_EPS = 1e-9

#: Default cap on explored nodes.
DEFAULT_NODE_LIMIT = 2_000_000


def _lp_bound(
    chains: List[List[MCKPItem]], start: int, budget: float
) -> float:
    """Greedy LP-relaxation bound over classes ``chains[start:]``.

    The chains are pre-filtered to LP-undominated form, so merging their
    increments in decreasing-efficiency order gives the exact LP value.
    """
    increments: List[Tuple[float, float, float]] = []  # (eff, dc, dp)
    for chain in chains[start:]:
        prev_c, prev_p = 0.0, 0.0
        for item in chain:
            dc = item.cost - prev_c
            dp = item.profit - prev_p
            increments.append((dp / dc, dc, dp))
            prev_c, prev_p = item.cost, item.profit
    increments.sort(key=lambda t: -t[0])
    bound = 0.0
    remaining = budget
    for _eff, dc, dp in increments:
        if remaining <= _EPS:
            break
        if dc <= remaining:
            bound += dp
            remaining -= dc
        else:
            bound += dp * (remaining / dc)
            break
    return bound


def solve_branch_and_bound(
    instance: MCKPInstance, node_limit: int = DEFAULT_NODE_LIMIT
) -> MCKPSolution:
    """Solve the MCKP exactly.

    Args:
        instance: The MCKP instance.
        node_limit: Abort (with :class:`SolverError`) beyond this many
            search nodes.

    Returns:
        An optimal solution; its ``upper_bound`` equals its profit.

    Raises:
        SolverError: If the node limit is exceeded.
    """
    # LP-dominance filtering is optimality-preserving for the integral
    # problem only w.r.t. plain dominance; LP-dominated items *can* be
    # integrally optimal, so branch over plainly-dominance-filtered
    # items but bound with LP-filtered chains.
    from repro.mckp.dominance import remove_dominated

    full_chains: List[List[MCKPItem]] = []
    for items in instance.classes.values():
        chain = [
            item for item in remove_dominated(items)
            if item.cost <= instance.budget + _EPS and item.profit > 0
        ]
        if chain:
            full_chains.append(chain)
    # Order classes by their best efficiency so good solutions are found
    # early and the bound prunes aggressively.
    full_chains.sort(
        key=lambda chain: -max(i.efficiency for i in chain)
    )
    lp_chains = [remove_lp_dominated(chain) for chain in full_chains]

    best_profit = 0.0
    best_choice: Dict[Hashable, MCKPItem] = {}
    nodes = 0

    def dfs(
        index: int,
        budget: float,
        profit: float,
        choice: Dict[Hashable, MCKPItem],
    ) -> None:
        nonlocal best_profit, best_choice, nodes
        nodes += 1
        if nodes > node_limit:
            raise SolverError(
                f"branch-and-bound exceeded {node_limit} nodes"
            )
        if profit > best_profit + _EPS:
            best_profit = profit
            best_choice = dict(choice)
        if index >= len(full_chains):
            return
        if profit + _lp_bound(lp_chains, index, budget) <= best_profit + _EPS:
            return
        # Branch: each affordable item of this class, then skipping it.
        for item in full_chains[index]:
            if item.cost <= budget + _EPS:
                choice[item.class_id] = item
                dfs(index + 1, budget - item.cost, profit + item.profit, choice)
                del choice[item.class_id]
        dfs(index + 1, budget, profit, choice)

    dfs(0, instance.budget, 0.0, {})

    solution = MCKPSolution(upper_bound=best_profit)
    for item in best_choice.values():
        solution.add(item)
    return solution
