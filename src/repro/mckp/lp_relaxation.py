"""Greedy LP-relaxation solver for the MCKP (Ibaraki [14] / Sinha-Zoltners [19]).

After LP-dominance filtering, each class is a chain of items with
decreasing incremental efficiencies.  The LP relaxation of MCKP is then
solved *exactly* by a single greedy sweep over all increments in
decreasing efficiency order, stopping at the budget; at most one
increment is taken fractionally.  Dropping the fractional increment
yields an integral solution whose profit is at least
``LP_opt - max_item_profit`` -- combined with the best-single-item
fallback this is the classical 1/2-approximation, and on the paper's
workloads (many small-cost items against a large budget) it is within
:math:`(1 - \\varepsilon)` of optimal because the fractional loss is one
item out of many.  An exact :math:`(1-\\varepsilon)` FPTAS is available
in :mod:`repro.mckp.dynamic_programming` for callers that need the
guarantee at any instance size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.mckp.dominance import remove_lp_dominated
from repro.mckp.items import MCKPInstance, MCKPItem, MCKPSolution

_EPS = 1e-12


@dataclass(frozen=True)
class _Increment:
    """One step up a class's LP-undominated chain."""

    class_id: Hashable
    level: int  # position in the chain, 0-based
    delta_cost: float
    delta_profit: float
    item: MCKPItem  # the item reached by taking this increment

    @property
    def efficiency(self) -> float:
        return self.delta_profit / self.delta_cost


def _build_increments(
    instance: MCKPInstance,
) -> Tuple[List[_Increment], Dict[Hashable, List[MCKPItem]]]:
    """LP-dominance-filter every class and emit its increments."""
    increments: List[_Increment] = []
    chains: Dict[Hashable, List[MCKPItem]] = {}
    for class_id, items in instance.classes.items():
        chain = remove_lp_dominated(items)
        if not chain:
            continue
        chains[class_id] = chain
        prev_cost, prev_profit = 0.0, 0.0
        for level, item in enumerate(chain):
            increments.append(
                _Increment(
                    class_id=class_id,
                    level=level,
                    delta_cost=item.cost - prev_cost,
                    delta_profit=item.profit - prev_profit,
                    item=item,
                )
            )
            prev_cost, prev_profit = item.cost, item.profit
    # Within a class efficiencies strictly decrease, so a global sort by
    # efficiency (ties: class then level) preserves per-class order.
    increments.sort(
        key=lambda inc: (-inc.efficiency, str(inc.class_id), inc.level)
    )
    return increments, chains


@dataclass
class LPRelaxationResult:
    """Outcome of the greedy LP-relaxation sweep.

    Attributes:
        lp_value: Exact optimum of the LP relaxation (an upper bound on
            the integral optimum).
        integral: The greedy integral solution (fractional part dropped,
            best-single-item fallback applied).
        fractional_class: Class of the increment taken fractionally, or
            ``None`` when the LP optimum is integral.
        fraction: Fraction of the breaking increment taken (0 when
            integral).
    """

    lp_value: float
    integral: MCKPSolution
    fractional_class: Optional[Hashable]
    fraction: float


def solve_lp_relaxation(instance: MCKPInstance) -> LPRelaxationResult:
    """Solve the MCKP LP relaxation exactly and round greedily.

    Returns:
        The LP value, the integral (rounded) solution with its
        ``upper_bound`` field set to the LP value, and the fractional
        remainder information.
    """
    increments, _chains = _build_increments(instance)

    remaining = instance.budget
    lp_value = 0.0
    fraction = 0.0
    fractional_class: Optional[Hashable] = None
    taken_level: Dict[Hashable, MCKPItem] = {}

    for inc in increments:
        if remaining <= _EPS:
            break
        if inc.delta_cost <= remaining + _EPS:
            taken_level[inc.class_id] = inc.item
            lp_value += inc.delta_profit
            remaining -= inc.delta_cost
        else:
            fraction = remaining / inc.delta_cost
            lp_value += fraction * inc.delta_profit
            fractional_class = inc.class_id
            remaining = 0.0
            break

    integral = MCKPSolution(upper_bound=lp_value)
    for item in taken_level.values():
        integral.add(item)

    # Classical safeguard: the better of (greedy integral) and (best
    # single affordable item) is a 1/2-approximation even adversarially.
    best_single = _best_single_item(instance)
    if best_single is not None and best_single.profit > integral.total_profit:
        integral = MCKPSolution(upper_bound=lp_value)
        integral.add(best_single)

    return LPRelaxationResult(
        lp_value=lp_value,
        integral=integral,
        fractional_class=fractional_class,
        fraction=fraction,
    )


def _best_single_item(instance: MCKPInstance) -> Optional[MCKPItem]:
    """The most profitable single item that fits the budget alone."""
    best: Optional[MCKPItem] = None
    for item in instance.all_items():
        if item.cost <= instance.budget + _EPS:
            if best is None or item.profit > best.profit:
                best = item
    return best


def solve_greedy(instance: MCKPInstance) -> MCKPSolution:
    """Convenience wrapper returning just the integral solution."""
    return solve_lp_relaxation(instance).integral
