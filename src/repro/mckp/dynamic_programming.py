"""Exact and FPTAS dynamic programming for the MCKP.

Two formulations:

* :func:`solve_dp_by_cost` -- exact DP over a discretised budget axis.
  Exact whenever all costs are integer multiples of ``cost_resolution``
  (the ad catalogues in this library use unit-dollar prices, so the
  default resolution is exact for them).  Time
  ``O(n_items * budget / resolution)``.
* :func:`solve_fptas` -- the profit-scaling FPTAS: guarantees profit at
  least :math:`(1 - \\varepsilon)` of optimal for any real-valued costs,
  in time polynomial in :math:`1/\\varepsilon`.  This realises the
  ":math:`\\varepsilon`-approximate" single-vendor solver the paper's
  Theorem III.1 relies on.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Tuple

from repro.exceptions import SolverError
from repro.mckp.dominance import remove_dominated
from repro.mckp.items import MCKPInstance, MCKPItem, MCKPSolution

#: Improvement tolerance; far below any meaningful profit difference so
#: the DP stays exact to float precision (a looser epsilon can swallow
#: genuinely better solutions, as a property test once demonstrated).
_EPS = 1e-12

#: Refuse DP tables larger than this many cells (guards runaway memory).
MAX_TABLE_CELLS = 50_000_000


def _scaled_costs(
    instance: MCKPInstance, cost_resolution: float
) -> Tuple[Dict[Tuple[Hashable, Hashable], int], int]:
    """Round every cost *up* to the resolution grid.

    Rounding up keeps every DP solution feasible for the true instance
    (it can only forbid solutions, never allow an infeasible one).
    """
    scaled = {}
    for item in instance.all_items():
        units = max(1, int(math.ceil(item.cost / cost_resolution - _EPS)))
        scaled[(item.class_id, item.item_id)] = units
    budget_units = int(math.floor(instance.budget / cost_resolution + _EPS))
    return scaled, budget_units


def solve_dp_by_cost(
    instance: MCKPInstance, cost_resolution: float = 0.01
) -> MCKPSolution:
    """Exact MCKP DP over the budget axis.

    Args:
        instance: The MCKP instance.
        cost_resolution: Grid step for the budget axis.  When every cost
            is a multiple of this, the result is exactly optimal;
            otherwise costs are rounded up, making the result a feasible
            lower bound.

    Returns:
        The optimal (under the grid) solution.

    Raises:
        SolverError: If the DP table would exceed the memory guard.
    """
    scaled, budget_units = _scaled_costs(instance, cost_resolution)
    classes = [
        remove_dominated(items) for items in instance.classes.values()
    ]
    classes = [chain for chain in classes if chain]
    n_cells = (budget_units + 1) * max(1, len(classes))
    if n_cells > MAX_TABLE_CELLS:
        raise SolverError(
            f"DP table of {n_cells} cells exceeds the guard; use the "
            "greedy LP-relaxation or branch-and-bound solver instead"
        )

    # dp[w] = best profit within budget w; choice[ci][w] = item chosen
    # by class ci at state w (None = skip the class).
    dp: List[float] = [0.0] * (budget_units + 1)
    choices: List[List[Optional[MCKPItem]]] = []
    for chain in classes:
        new_dp = list(dp)
        choice_row: List[Optional[MCKPItem]] = [None] * (budget_units + 1)
        for item in chain:
            units = scaled[(item.class_id, item.item_id)]
            if units > budget_units:
                continue
            profit = item.profit
            for w in range(budget_units, units - 1, -1):
                candidate = dp[w - units] + profit
                if candidate > new_dp[w] + _EPS:
                    new_dp[w] = candidate
                    choice_row[w] = item
        dp = new_dp
        choices.append(choice_row)

    # Backtrack from the best final state.
    best_w = max(range(budget_units + 1), key=lambda w: dp[w])
    solution = MCKPSolution(upper_bound=None)
    w = best_w
    for ci in range(len(classes) - 1, -1, -1):
        item = choices[ci][w]
        # choice_row[w] records the decision only if the class improved
        # the state; reconstruct by re-checking optimal substructure.
        if item is not None:
            units = scaled[(item.class_id, item.item_id)]
            solution.add(item)
            w -= units
    return solution


def solve_fptas(
    instance: MCKPInstance, epsilon: float = 0.05
) -> MCKPSolution:
    """Profit-scaling FPTAS: profit at least ``(1 - epsilon) * OPT``.

    DP over scaled integer profits with ``dp[p] = min cost to reach
    scaled profit p``; profits are scaled by
    ``epsilon * P_max / n_classes`` so the table has
    ``O(n_classes^2 / epsilon)`` rows.

    Args:
        instance: The MCKP instance (arbitrary real costs allowed).
        epsilon: Relative error bound in ``(0, 1)``.

    Raises:
        ValueError: If ``epsilon`` is out of range.
        SolverError: If the profit table would exceed the memory guard.
    """
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")

    chains = [
        [i for i in remove_dominated(items)
         if i.cost <= instance.budget + _EPS and i.profit > 0]
        for items in instance.classes.values()
    ]
    chains = [chain for chain in chains if chain]
    if not chains:
        return MCKPSolution(upper_bound=0.0)

    p_max = max(item.profit for chain in chains for item in chain)
    n = len(chains)
    scale = epsilon * p_max / n
    if scale <= 0:
        return MCKPSolution(upper_bound=0.0)

    def scaled_profit(item: MCKPItem) -> int:
        return int(math.floor(item.profit / scale + _EPS))

    max_profit_units = sum(
        max(scaled_profit(item) for item in chain) for chain in chains
    )
    n_cells = (max_profit_units + 1) * n
    if n_cells > MAX_TABLE_CELLS:
        raise SolverError(
            f"FPTAS table of {n_cells} cells exceeds the guard; "
            "increase epsilon"
        )

    inf = float("inf")
    dp: List[float] = [inf] * (max_profit_units + 1)
    dp[0] = 0.0
    back: List[List[Optional[MCKPItem]]] = []
    for chain in chains:
        new_dp = list(dp)
        row: List[Optional[MCKPItem]] = [None] * (max_profit_units + 1)
        for item in chain:
            units = scaled_profit(item)
            if units == 0:
                continue
            for p in range(max_profit_units, units - 1, -1):
                if dp[p - units] + item.cost < new_dp[p] - _EPS:
                    new_dp[p] = dp[p - units] + item.cost
                    row[p] = item
        dp = new_dp
        back.append(row)

    best_p = 0
    for p in range(max_profit_units, -1, -1):
        if dp[p] <= instance.budget + _EPS:
            best_p = p
            break

    solution = MCKPSolution(upper_bound=None)
    p = best_p
    for ci in range(len(chains) - 1, -1, -1):
        item = back[ci][p]
        if item is not None:
            solution.add(item)
            p -= scaled_profit(item)
    return solution
