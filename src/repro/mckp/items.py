"""Data model for the multiple-choice knapsack problem (MCKP).

The single-vendor problem of Section III-A is an MCKP: each valid
customer of the vendor forms a *class*; the class's *items* are the ad
types, with cost :math:`c_k` and profit :math:`\\lambda_{ijk}`; at most
one item per class may be chosen, subject to the vendor budget.
Classes are *optional* -- choosing nothing from a class is allowed --
matching the :math:`\\sum_k x_{iok} \\le 1` constraint of Eq. 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Tuple

from repro.exceptions import InvalidProblemError


@dataclass(frozen=True)
class MCKPItem:
    """One selectable item of one class.

    Attributes:
        class_id: The class (customer) the item belongs to.
        item_id: Identity within the class (ad type id).
        cost: Knapsack weight :math:`c_k > 0`.
        profit: Objective contribution :math:`\\lambda_{ijk} \\ge 0`.
    """

    class_id: Hashable
    item_id: Hashable
    cost: float
    profit: float

    def __post_init__(self) -> None:
        if self.cost <= 0:
            raise InvalidProblemError(
                f"MCKP item {(self.class_id, self.item_id)}: cost must be "
                f"positive, got {self.cost}"
            )
        if self.profit < 0:
            raise InvalidProblemError(
                f"MCKP item {(self.class_id, self.item_id)}: profit must be "
                f"non-negative, got {self.profit}"
            )

    @property
    def efficiency(self) -> float:
        """Profit per unit of cost."""
        return self.profit / self.cost


@dataclass(frozen=True)
class MCKPInstance:
    """An MCKP instance: optional classes of items plus a budget.

    Attributes:
        classes: class_id -> items of that class.
        budget: Knapsack capacity :math:`B`.
    """

    classes: Mapping[Hashable, Tuple[MCKPItem, ...]]
    budget: float

    def __post_init__(self) -> None:
        if self.budget < 0:
            raise InvalidProblemError(
                f"MCKP budget must be >= 0, got {self.budget}"
            )
        for class_id, items in self.classes.items():
            for item in items:
                if item.class_id != class_id:
                    raise InvalidProblemError(
                        f"item {item} filed under wrong class {class_id!r}"
                    )

    @classmethod
    def from_items(
        cls, items: Iterable[MCKPItem], budget: float
    ) -> "MCKPInstance":
        """Group a flat item list into classes."""
        classes: Dict[Hashable, List[MCKPItem]] = {}
        for item in items:
            classes.setdefault(item.class_id, []).append(item)
        return cls(
            classes={k: tuple(v) for k, v in classes.items()}, budget=budget
        )

    @property
    def n_classes(self) -> int:
        """Number of classes."""
        return len(self.classes)

    @property
    def n_items(self) -> int:
        """Total number of items across classes."""
        return sum(len(items) for items in self.classes.values())

    def all_items(self) -> List[MCKPItem]:
        """Every item, flattened."""
        return [item for items in self.classes.values() for item in items]


@dataclass
class MCKPSolution:
    """An (integral) MCKP solution.

    Attributes:
        chosen: class_id -> the selected item (absent classes chose
            nothing).
        total_profit: Sum of selected profits.
        total_cost: Sum of selected costs.
        upper_bound: An upper bound on the optimal profit when the
            solver provides one (the LP relaxation value), else ``None``.
    """

    chosen: Dict[Hashable, MCKPItem] = field(default_factory=dict)
    total_profit: float = 0.0
    total_cost: float = 0.0
    upper_bound: float = None  # type: ignore[assignment]

    def add(self, item: MCKPItem) -> None:
        """Select ``item`` for its class.

        Raises:
            InvalidProblemError: If the class already has a selection.
        """
        if item.class_id in self.chosen:
            raise InvalidProblemError(
                f"class {item.class_id!r} already has a selected item"
            )
        self.chosen[item.class_id] = item
        self.total_profit += item.profit
        self.total_cost += item.cost

    def is_feasible(self, instance: MCKPInstance, tolerance: float = 1e-9) -> bool:
        """Whether the solution respects the instance budget."""
        return self.total_cost <= instance.budget + tolerance
