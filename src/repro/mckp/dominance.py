"""Dominance filtering for MCKP classes.

Two classic reductions (Sinha & Zoltners [19]):

* *Dominance*: item b is dominated by item a of the same class when
  ``a.cost <= b.cost`` and ``a.profit >= b.profit`` -- b can never be
  part of an optimal solution.
* *LP-dominance*: among undominated items, only those on the upper
  convex hull of the (cost, profit) point set (with the origin added,
  because classes are optional) can appear in an optimal solution of the
  LP relaxation.  The surviving chain has strictly decreasing
  incremental efficiencies, which is exactly what the greedy
  LP-relaxation solver consumes.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.mckp.items import MCKPItem

#: Tolerance for cost/profit comparisons during filtering.
_EPS = 1e-12


def remove_dominated(items: Sequence[MCKPItem]) -> List[MCKPItem]:
    """Drop dominated items from one class.

    Returns the survivors sorted by increasing cost, with strictly
    increasing profit.  Zero-profit items are kept only if nothing
    cheaper exists (they can never help, but preserving one keeps the
    degenerate all-zero class representable).
    """
    by_cost = sorted(items, key=lambda item: (item.cost, -item.profit))
    survivors: List[MCKPItem] = []
    best_profit = -1.0
    for item in by_cost:
        if item.profit > best_profit + _EPS:
            survivors.append(item)
            best_profit = item.profit
    return survivors


def remove_lp_dominated(items: Sequence[MCKPItem]) -> List[MCKPItem]:
    """Keep only the upper-convex-hull chain of one class.

    The input need not be pre-filtered; plain dominance is applied
    first.  The origin ``(0, 0)`` participates in the hull because
    choosing nothing from the class is allowed, so the first survivor is
    the item with the highest plain efficiency.

    Returns:
        Hull items sorted by increasing cost; consecutive incremental
        efficiencies are strictly decreasing.
    """
    candidates = remove_dominated(items)
    candidates = [item for item in candidates if item.profit > _EPS]
    if not candidates:
        return []
    # Andrew-monotone-chain style scan over (cost, profit), seeded with
    # the origin.  hull holds (cost, profit, item|None).
    hull: List[tuple] = [(0.0, 0.0, None)]
    for item in candidates:
        while len(hull) >= 2:
            (c1, p1, _), (c2, p2, _) = hull[-2], hull[-1]
            # Slope from hull[-2] to hull[-1] must exceed the slope from
            # hull[-2] to the new point, else hull[-1] is LP-dominated.
            lhs = (p2 - p1) * (item.cost - c1)
            rhs = (item.profit - p1) * (c2 - c1)
            if lhs <= rhs + _EPS:
                hull.pop()
            else:
                break
        hull.append((item.cost, item.profit, item))
    return [entry[2] for entry in hull[1:]]


def incremental_efficiencies(chain: Sequence[MCKPItem]) -> List[float]:
    """Incremental efficiencies along an LP-undominated chain.

    Entry t is ``(p_t - p_{t-1}) / (c_t - c_{t-1})`` with the virtual
    origin as predecessor of the first item.
    """
    efficiencies = []
    prev_cost, prev_profit = 0.0, 0.0
    for item in chain:
        efficiencies.append(
            (item.profit - prev_profit) / (item.cost - prev_cost)
        )
        prev_cost, prev_profit = item.cost, item.profit
    return efficiencies
