"""Multiple-choice knapsack substrate for the single-vendor problems."""

from repro.mckp.branch_and_bound import solve_branch_and_bound
from repro.mckp.dominance import (
    incremental_efficiencies,
    remove_dominated,
    remove_lp_dominated,
)
from repro.mckp.dynamic_programming import solve_dp_by_cost, solve_fptas
from repro.mckp.items import MCKPInstance, MCKPItem, MCKPSolution
from repro.mckp.lp_relaxation import (
    LPRelaxationResult,
    solve_greedy,
    solve_lp_relaxation,
)
from repro.mckp.solvers import SOLVER_NAMES, lp_value_via_simplex, solve

__all__ = [
    "solve_branch_and_bound",
    "incremental_efficiencies",
    "remove_dominated",
    "remove_lp_dominated",
    "solve_dp_by_cost",
    "solve_fptas",
    "MCKPInstance",
    "MCKPItem",
    "MCKPSolution",
    "LPRelaxationResult",
    "solve_greedy",
    "solve_lp_relaxation",
    "SOLVER_NAMES",
    "lp_value_via_simplex",
    "solve",
]
