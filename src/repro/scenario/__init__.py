"""Pluggable workload scenarios for the problem→engine→stream→serve stack.

A scenario transforms a baseline problem into the workload a run should
exercise: multi-slot vendor inventory (slot-expanded catalogues),
trajectory customers (mid-episode moves applied through the churn delta
machinery), or diurnal arrivals (timestamps resampled from the temporal
activity model α_x(φ)).  The default :class:`SingleSlotStatic` is the
identity and is pinned byte-identical to the pre-scenario code path.
See ``docs/scenarios.md``.
"""

from repro.scenario.base import Scenario, ScenarioRun, SingleSlotStatic
from repro.scenario.diurnal import (
    DiurnalScenario,
    diurnal_intensity,
    resample_arrival_times,
    sample_arrival_hours,
)
from repro.scenario.registry import (
    DEFAULT_SCENARIO,
    SCENARIOS,
    get_scenario,
    scenario_names,
)
from repro.scenario.slots import (
    MultiSlotScenario,
    SlotMap,
    expand_problem,
    expand_vendor_slots,
)
from repro.scenario.trajectory import (
    CustomerMove,
    MoveSchedule,
    TrajectoryScenario,
    seeded_customer_moves,
)

__all__ = [
    "Scenario",
    "ScenarioRun",
    "SingleSlotStatic",
    "MultiSlotScenario",
    "TrajectoryScenario",
    "DiurnalScenario",
    "SlotMap",
    "expand_problem",
    "expand_vendor_slots",
    "CustomerMove",
    "MoveSchedule",
    "seeded_customer_moves",
    "diurnal_intensity",
    "sample_arrival_hours",
    "resample_arrival_times",
    "SCENARIOS",
    "DEFAULT_SCENARIO",
    "get_scenario",
    "scenario_names",
]
