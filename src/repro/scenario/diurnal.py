"""Diurnal arrivals: resample customer timestamps from α_x(φ).

The synthetic generator draws ``arrival_time`` uniformly over the day,
which leaves the temporal activity model unused on the arrival side.
This scenario resamples every customer's timestamp from an intensity
curve derived from :math:`\\alpha_x(\\varphi)` -- by default the mean of
the built-in category profiles, so arrivals cluster at breakfast,
lunch, the commute, and the evening exactly where tag activity peaks.

The resample draws from the dedicated ``"diurnal"`` NumPy seed stream
(:func:`repro.seeding.stream_numpy_rng`); only ``arrival_time`` changes,
so utilities at a *fixed* hour are untouched while arrival *order* (and
hour-sensitive utility evaluation) follows the diurnal cycle.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.problem import MUAAProblem
from repro.seeding import stream_numpy_rng
from repro.utility.activity import (
    DAY_HOURS,
    DEFAULT_CATEGORY_PROFILES,
    ActivityProfile,
)

from repro.scenario.base import Scenario, ScenarioRun

__all__ = [
    "DiurnalScenario",
    "diurnal_intensity",
    "sample_arrival_hours",
    "resample_arrival_times",
]

#: Half-hour sampling grid, matching the check-in generator's convention.
GRID_HOURS = 0.5


def diurnal_intensity(
    hours: Sequence[float],
    profiles: Optional[Sequence[ActivityProfile]] = None,
) -> np.ndarray:
    """Arrival intensity at each hour: mean activity over ``profiles``.

    Defaults to the built-in category profiles, i.e. the population-
    level activity curve of the default taxonomy.  Unnormalized --
    callers divide by the sum when they need sampling weights.
    """
    if profiles is None:
        profiles = tuple(DEFAULT_CATEGORY_PROFILES.values())
    rows = [
        [profile.activity(hour) for hour in hours] for profile in profiles
    ]
    return np.asarray(rows, dtype=np.float64).mean(axis=0)


def sample_arrival_hours(
    n: int,
    rng: np.random.Generator,
    profiles: Optional[Sequence[ActivityProfile]] = None,
) -> np.ndarray:
    """``n`` arrival hours drawn from the diurnal intensity curve.

    Weighted choice over the half-hour grid plus uniform jitter inside
    the chosen bin -- the same discretization the check-in generator
    uses, so grid artifacts match across datagen paths.
    """
    grid = np.arange(0.0, DAY_HOURS, GRID_HOURS)
    weights = diurnal_intensity(grid, profiles)
    weights = weights / weights.sum()
    bins = rng.choice(len(grid), size=n, p=weights)
    jitter = rng.uniform(0.0, GRID_HOURS, size=n)
    return grid[bins] + jitter


def resample_arrival_times(
    problem: MUAAProblem,
    seed: int,
    profiles: Optional[Sequence[ActivityProfile]] = None,
) -> MUAAProblem:
    """A new problem whose customers carry diurnal arrival times.

    Every other field of every entity -- and every configuration knob
    of the problem -- carries over unchanged.  Deterministic in
    ``seed`` via the dedicated ``"diurnal"`` stream.
    """
    from dataclasses import replace

    rng = stream_numpy_rng(seed, "diurnal")
    hours = sample_arrival_hours(len(problem.customers), rng, profiles)
    customers: List = [
        replace(customer, arrival_time=float(hour))
        for customer, hour in zip(problem.customers, hours)
    ]
    return MUAAProblem(
        customers=customers,
        vendors=problem.vendors,
        ad_types=problem.ad_types,
        utility_model=problem.utility_model,
        pair_validator=problem.pair_validator,
        spatial_backend=problem.spatial_backend,
        use_engine=problem._use_engine,
        parallel=problem.parallel_config,
        dtype=problem.dtype_policy,
        slot_map=problem.slot_map,
    )


class DiurnalScenario(Scenario):
    """Arrival timestamps follow the α_x(φ) diurnal activity curve."""

    name = "diurnal"
    description = (
        "Customer arrival times resampled from the mean category "
        "activity curve, so load peaks where tag activity peaks."
    )

    def __init__(
        self, profiles: Optional[Sequence[ActivityProfile]] = None
    ) -> None:
        self.profiles = tuple(profiles) if profiles is not None else None

    def realize(self, problem: MUAAProblem, seed: int) -> ScenarioRun:
        return ScenarioRun(
            problem=resample_arrival_times(problem, seed, self.profiles),
            moves=None,
            scenario=self.name,
        )
