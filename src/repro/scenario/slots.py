"""Multi-slot inventory: expand each vendor into k per-slot vendors.

The Multi-Slot Tag Assignment formulation (Ali et al., arXiv:2409.09623)
generalizes the MCKP substrate to vendors offering ``k`` display slots.
Rather than teaching every kernel about slots, we *expand the catalogue*:
each base vendor becomes ``k`` ordinary :class:`~repro.core.entities.
Vendor` slot-vendors sharing its location, radius, and tags, with the
budget split evenly across slots.  Eq. 4/5 kernels, the columnar engine,
and GREEDY/LP/RECON/O-AFA then solve over slot-vendors without any
kernel changes -- a slot-vendor *is* a vendor.  The :class:`SlotMap`
records the id mapping so results can be folded back per base vendor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.entities import Vendor
from repro.core.problem import MUAAProblem

from repro.scenario.base import Scenario, ScenarioRun

__all__ = [
    "SlotMap",
    "MultiSlotScenario",
    "expand_vendor_slots",
    "expand_problem",
]


@dataclass(frozen=True)
class SlotMap:
    """Bookkeeping for a slot-expanded vendor catalogue.

    Attributes:
        k: Slots per base vendor.
        base_of: slot-vendor id -> base vendor id.
        slot_of: slot-vendor id -> slot index in ``range(k)``.
    """

    k: int
    base_of: Dict[int, int]
    slot_of: Dict[int, int]

    @property
    def n_base(self) -> int:
        """Number of base vendors the expansion covers."""
        return len(set(self.base_of.values()))

    def slots_of_base(self, base_id: int) -> Tuple[int, ...]:
        """Slot-vendor ids of one base vendor, in slot order."""
        hits = [
            (self.slot_of[sid], sid)
            for sid, bid in self.base_of.items()
            if bid == base_id
        ]
        return tuple(sid for _, sid in sorted(hits))

    def fold_spend(self, spend_by_vendor: Dict[int, float]) -> Dict[int, float]:
        """Aggregate per-slot-vendor spend back onto base vendor ids."""
        folded: Dict[int, float] = {}
        for sid, amount in spend_by_vendor.items():
            base = self.base_of.get(sid, sid)
            folded[base] = folded.get(base, 0.0) + amount
        return folded


def expand_vendor_slots(vendors, k: int):
    """Expand each vendor into ``k`` slot-vendors with fresh ids.

    Slot-vendors get sequential ids (``base_row * k + slot``, remapped
    onto a fresh contiguous range so ids stay dense regardless of the
    input id space), the base vendor's location/radius/tags, and
    ``budget / k`` each -- total spend capacity is conserved exactly up
    to float division.

    Returns:
        ``(slot_vendors, slot_map)``.
    """
    if k < 1:
        raise ValueError(f"slot count must be >= 1, got {k}")
    slot_vendors = []
    base_of: Dict[int, int] = {}
    slot_of: Dict[int, int] = {}
    next_id = 0
    for vendor in vendors:
        share = vendor.budget / k
        for slot in range(k):
            slot_vendors.append(
                Vendor(
                    vendor_id=next_id,
                    location=vendor.location,
                    radius=vendor.radius,
                    budget=share,
                    tags=vendor.tags,
                )
            )
            base_of[next_id] = vendor.vendor_id
            slot_of[next_id] = slot
            next_id += 1
    return slot_vendors, SlotMap(k=k, base_of=base_of, slot_of=slot_of)


def expand_problem(problem: MUAAProblem, k: int) -> MUAAProblem:
    """A new problem over the slot-expanded vendor catalogue.

    Customers, ad types, utility model, and every configuration knob
    (spatial backend, engine policy, parallel config, dtype policy)
    carry over unchanged; only the vendor list is expanded and the
    resulting problem carries the :class:`SlotMap` for fold-back.
    ``k == 1`` still re-ids vendors onto a dense range, so callers
    wanting the identity should use :class:`~repro.scenario.base.
    SingleSlotStatic` instead.
    """
    slot_vendors, slot_map = expand_vendor_slots(problem.vendors, k)
    return MUAAProblem(
        customers=problem.customers,
        vendors=slot_vendors,
        ad_types=problem.ad_types,
        utility_model=problem.utility_model,
        pair_validator=problem.pair_validator,
        spatial_backend=problem.spatial_backend,
        use_engine=problem._use_engine,
        parallel=problem.parallel_config,
        dtype=problem.dtype_policy,
        slot_map=slot_map,
    )


class MultiSlotScenario(Scenario):
    """Each vendor offers ``k`` ad slots (slot-expanded catalogue)."""

    def __init__(self, k: int) -> None:
        if k < 2:
            raise ValueError(
                f"multi-slot scenarios need k >= 2 (got {k}); "
                "k=1 is SingleSlotStatic"
            )
        self.k = k
        self.name = f"multi-slot-{k}"
        self.description = (
            f"Each vendor split into {k} per-slot vendors (budget/{k} "
            "each); kernels and solvers run unchanged over slot-vendors."
        )

    def realize(self, problem: MUAAProblem, seed: int) -> ScenarioRun:
        return ScenarioRun(
            problem=expand_problem(problem, self.k),
            moves=None,
            scenario=self.name,
        )
