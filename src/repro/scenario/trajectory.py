"""Trajectory customers: mid-episode location moves.

AdCell (Alaei et al., arXiv:1112.5396) motivates customers whose cell
evolves over the episode.  A :class:`MoveSchedule` keys
:class:`CustomerMove` events by arrival tick -- the exact shape of
:class:`~repro.churn.ChurnSchedule` -- and the streaming layers apply
them through :meth:`~repro.core.problem.MUAAProblem.move_customer`,
which bumps the problem's ``location_epoch`` so candidate ranges are
re-resolved through the scalar spatial path for exactly the moved ids.

Moves are drawn from the dedicated ``"moves"`` seed stream
(:func:`repro.seeding.stream_rng`), so enabling trajectories never
shifts churn or chaos draws sharing the user seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.core.problem import MUAAProblem
from repro.seeding import stream_rng

from repro.scenario.base import Scenario, ScenarioRun

__all__ = [
    "CustomerMove",
    "MoveSchedule",
    "TrajectoryScenario",
    "seeded_customer_moves",
]


@dataclass(frozen=True)
class CustomerMove:
    """One customer relocation, fired at arrival index ``tick``."""

    customer_id: int
    location: Tuple[float, float]
    tick: int


class MoveSchedule:
    """Customer moves keyed by the arrival tick at which they fire."""

    def __init__(self, moves: Iterable[CustomerMove] = ()) -> None:
        self._by_tick: Dict[int, List[CustomerMove]] = {}
        self._count = 0
        for move in moves:
            self.add(move)

    def add(self, move: CustomerMove) -> None:
        """Schedule one move at its ``tick``."""
        self._by_tick.setdefault(move.tick, []).append(move)
        self._count += 1

    def at(self, tick: int) -> Tuple[CustomerMove, ...]:
        """Moves scheduled to fire at one arrival index."""
        return tuple(self._by_tick.get(tick, ()))

    @property
    def moves(self) -> Tuple[CustomerMove, ...]:
        """All moves, ordered by tick (stable within a tick)."""
        ordered: List[CustomerMove] = []
        for tick in sorted(self._by_tick):
            ordered.extend(self._by_tick[tick])
        return tuple(ordered)

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0


def seeded_customer_moves(
    problem: MUAAProblem,
    n_moves: int,
    seed: int,
    n_ticks: int,
    step: float = 0.1,
) -> MoveSchedule:
    """A deterministic random-walk move plan over the unit square.

    ``n_moves`` relocations are spread evenly over ``(0, n_ticks)``
    (the same tick spacing as :func:`repro.churn.seeded_vendor_churn`).
    Each picks a seeded customer and steps its location by a uniform
    offset in ``[-step, step]^2``, clipped to ``[0, 1]^2``.  All draws
    come from the dedicated ``"moves"`` stream of ``seed``.
    """
    rng = stream_rng(seed, "moves")
    customer_ids = [c.customer_id for c in problem.customers]
    if not customer_ids:
        raise ValueError("cannot build a move plan for a customer-less problem")
    # Track walked positions so consecutive moves of one customer chain.
    positions: Dict[int, Tuple[float, float]] = {
        c.customer_id: (float(c.location[0]), float(c.location[1]))
        for c in problem.customers
    }
    schedule = MoveSchedule()
    for index in range(n_moves):
        tick = max(1, ((index + 1) * n_ticks) // (n_moves + 1))
        customer_id = rng.choice(customer_ids)
        x, y = positions[customer_id]
        x = min(1.0, max(0.0, x + rng.uniform(-step, step)))
        y = min(1.0, max(0.0, y + rng.uniform(-step, step)))
        positions[customer_id] = (x, y)
        schedule.add(
            CustomerMove(customer_id=customer_id, location=(x, y), tick=tick)
        )
    return schedule


class TrajectoryScenario(Scenario):
    """Customers relocate mid-episode along seeded random walks.

    Args:
        move_fraction: Number of moves as a fraction of the customer
            count (one customer may move several times).
        step: Per-move walk step in unit-square coordinates.
    """

    name = "trajectory"
    description = (
        "Customers relocate mid-stream along seeded random walks; "
        "candidate ranges re-resolve when the location epoch advances."
    )

    def __init__(self, move_fraction: float = 0.25, step: float = 0.1) -> None:
        if move_fraction <= 0:
            raise ValueError(
                f"move_fraction must be positive, got {move_fraction}"
            )
        self.move_fraction = move_fraction
        self.step = step

    def realize(self, problem: MUAAProblem, seed: int) -> ScenarioRun:
        n = len(problem.customers)
        n_moves = max(1, int(n * self.move_fraction))
        moves = seeded_customer_moves(
            problem, n_moves=n_moves, seed=seed, n_ticks=n, step=self.step
        )
        return ScenarioRun(problem=problem, moves=moves, scenario=self.name)
