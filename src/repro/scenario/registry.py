"""The scenario registry behind ``--scenario`` and ``repro info``."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.scenario.base import Scenario, SingleSlotStatic
from repro.scenario.diurnal import DiurnalScenario
from repro.scenario.slots import MultiSlotScenario
from repro.scenario.trajectory import TrajectoryScenario

__all__ = ["SCENARIOS", "DEFAULT_SCENARIO", "get_scenario", "scenario_names"]

#: The default (identity) scenario name.
DEFAULT_SCENARIO = "single-slot-static"

#: All registered scenarios, keyed by name.  Instances are stateless
#: (realize derives everything from the problem and seed), so sharing
#: one instance per name is safe.
SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        SingleSlotStatic(),
        MultiSlotScenario(2),
        MultiSlotScenario(4),
        TrajectoryScenario(),
        DiurnalScenario(),
    )
}


def scenario_names() -> Tuple[str, ...]:
    """Registered scenario names, default first."""
    rest = sorted(name for name in SCENARIOS if name != DEFAULT_SCENARIO)
    return (DEFAULT_SCENARIO, *rest)


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name.

    Raises:
        KeyError: With the known names, when ``name`` is unregistered.
    """
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise KeyError(
            f"unknown scenario {name!r} (known: {known})"
        ) from None
