"""The scenario protocol: pluggable workload shapes for one problem.

A :class:`Scenario` transforms a baseline :class:`~repro.core.problem.
MUAAProblem` into the workload a run should actually exercise -- slot
expansion, trajectory moves, diurnal arrival resampling -- and bundles
the result as a :class:`ScenarioRun`.  The contract every implementation
honours:

* ``realize`` is **pure with respect to its inputs**: the same problem
  object and seed always produce the same run (all randomness comes
  from dedicated :mod:`repro.seeding` streams, so enabling a scenario
  can never shift the draws of churn or chaos plans sharing the seed);
* the default :class:`SingleSlotStatic` is the **identity**: it returns
  the problem object itself, untransformed, with no move schedule --
  which is how the parity suite proves the scenario layer costs nothing
  when unused (byte-identical outputs, not just "close").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.problem import MUAAProblem

__all__ = ["Scenario", "ScenarioRun", "SingleSlotStatic"]


@dataclass(frozen=True)
class ScenarioRun:
    """One realized scenario: the problem to solve plus its dynamics.

    Attributes:
        problem: The (possibly transformed) problem instance.
        moves: Optional :class:`~repro.scenario.trajectory.MoveSchedule`
            of mid-episode customer relocations, keyed by arrival tick;
            ``None`` for static scenarios.  Streaming layers apply
            these through the same delta path as churn events.
        scenario: Name of the scenario that produced this run.
    """

    problem: MUAAProblem
    moves: Optional[object] = None
    scenario: str = "single-slot-static"


class Scenario:
    """Base class for pluggable workloads (see ``docs/scenarios.md``).

    Subclasses override :meth:`realize`; ``name`` and ``description``
    feed the registry, the ``--scenario`` CLI flag, and the scenario
    card in ``repro info``.
    """

    #: Registry key (also the ``--scenario`` CLI value).
    name: str = "scenario"
    #: One-line summary shown in the ``repro info`` scenario card.
    description: str = ""

    def realize(self, problem: MUAAProblem, seed: int) -> ScenarioRun:
        """Transform ``problem`` into this scenario's workload."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"{type(self).__name__}(name={self.name!r})"


class SingleSlotStatic(Scenario):
    """The identity scenario: the pre-refactor workload, unchanged.

    ``realize`` returns the *same* problem object (no copy, no
    transformation) and no move schedule, so every downstream layer
    takes exactly the code path it took before the scenario abstraction
    existed.  The parity suite pins this: under ``SingleSlotStatic``
    all tier-1 outputs are bitwise unchanged.
    """

    name = "single-slot-static"
    description = (
        "Default workload: static customers, one implicit ad slot per "
        "vendor, arrivals as generated (identity; byte-parity pinned)."
    )

    def realize(self, problem: MUAAProblem, seed: int) -> ScenarioRun:
        return ScenarioRun(problem=problem, moves=None, scenario=self.name)
