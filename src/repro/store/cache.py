"""Fingerprint-keyed engine artifact cache.

``repro demo --artifact DIR`` and ``repro reproduce --artifact DIR``
point here: a directory of engine artifacts keyed by the problem's
content fingerprint (entity columns + dtype policy + churn epoch), so
*any* problem -- including the many differently-scaled workloads of a
``reproduce`` run -- finds exactly its own engine and never a stale
one.  A run with a cold cache builds engines as usual and persists
them; the next run warm-loads (``np.memmap``) instead of re-scoring.

The cache is installed process-wide with :func:`engine_cache` (a
context manager) and consulted by ``MUAAProblem.acquire_engine``.  A
mismatched or corrupted entry is treated as a miss and rebuilt over,
never trusted -- unlike :meth:`repro.engine.ComputeEngine.load`, whose
explicit artifact must not be silently wrong.
"""

from __future__ import annotations

import hashlib
import json
from contextlib import contextmanager
from pathlib import Path
from typing import Optional, Union

from repro.exceptions import ArtifactError

__all__ = ["EngineCache", "active_cache", "engine_cache"]

_ACTIVE: Optional["EngineCache"] = None


class EngineCache:
    """A directory of engine artifacts keyed by problem fingerprint."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def key(self, problem) -> str:
        """Content key: entity fingerprint + dtype policy + epoch."""
        from repro.store.artifact import _entity_fingerprint

        policy = problem.dtype_policy
        material = json.dumps(
            {
                "fingerprint": _entity_fingerprint(problem, policy),
                "dtype_policy": policy.name,
                "churn_epoch": int(problem.churn.epoch),
            },
            sort_keys=True,
        )
        return hashlib.md5(material.encode("utf-8")).hexdigest()

    def path_for(self, problem) -> Path:
        return self.directory / f"engine-{self.key(problem)}.cols"

    def fetch(self, problem):
        """The cached engine for ``problem``, or ``None`` on a miss.

        A present-but-unusable entry (corrupted file, schema drift) is
        also a miss: the caller rebuilds and :meth:`store` overwrites
        the bad entry.
        """
        path = self.path_for(problem)
        if not path.exists():
            self.misses += 1
            return None
        from repro.store.artifact import load_engine

        try:
            engine = load_engine(path, problem)
        except ArtifactError:
            self.misses += 1
            return None
        self.hits += 1
        return engine

    def store(self, problem, engine) -> Path:
        """Persist a freshly built engine under the problem's key."""
        from repro.store.artifact import save_engine

        path = self.path_for(problem)
        save_engine(engine, path)
        return path


def active_cache() -> Optional[EngineCache]:
    """The process-wide cache installed by :func:`engine_cache`."""
    return _ACTIVE


@contextmanager
def engine_cache(directory: Union[str, Path]):
    """Install an :class:`EngineCache` for the duration of the block."""
    global _ACTIVE
    previous = _ACTIVE
    cache = EngineCache(directory)
    _ACTIVE = cache
    try:
        yield cache
    finally:
        _ACTIVE = previous
