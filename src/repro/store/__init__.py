"""mmap-able on-disk artifacts for engines and shard plans.

``repro.store`` persists the expensive build products -- the candidate
edge table and pair bases of a :class:`~repro.engine.ComputeEngine`,
and the partition of a :class:`~repro.sharding.ShardPlan` -- in a
column container that loads by ``mmap`` rather than by parsing.  See
``docs/scale.md`` for the file format and the validation rules.
"""

from repro.store.artifact import (
    ENGINE_SCHEMA_VERSION,
    PLAN_FILE,
    PLAN_SCHEMA_VERSION,
    git_sha,
    load_engine,
    load_plan,
    problem_fingerprint,
    save_engine,
    save_plan,
    save_sharded,
    shard_artifact_name,
)
from repro.store.cache import EngineCache, active_cache, engine_cache
from repro.store.columns import (
    ALIGNMENT,
    FORMAT_VERSION,
    MAGIC,
    read_columns,
    write_columns,
)

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "ALIGNMENT",
    "read_columns",
    "write_columns",
    "ENGINE_SCHEMA_VERSION",
    "PLAN_SCHEMA_VERSION",
    "PLAN_FILE",
    "git_sha",
    "problem_fingerprint",
    "save_engine",
    "load_engine",
    "save_plan",
    "load_plan",
    "save_sharded",
    "shard_artifact_name",
    "EngineCache",
    "active_cache",
    "engine_cache",
]
