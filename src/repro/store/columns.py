"""The on-disk mmap-able column container.

One artifact file holds named NumPy columns as raw little-endian blobs
plus a JSON metadata document.  The layout is designed so a *load* is
O(mmap), not O(read):

::

    offset 0   magic            8 bytes  (``b"RPROCOLS"``)
    offset 8   format version   uint32 LE
    offset 12  reserved         uint32 LE (zero)
    offset 16  metadata length  uint64 LE
    offset 24  metadata         UTF-8 JSON, ``meta_len`` bytes
    ...        zero padding to the next 64-byte boundary
    ...        column blobs, each 64-byte aligned, C-order raw bytes

The JSON document carries the column directory (name, dtype, shape,
offset, byte length, CRC32) and an opaque ``extra`` dict for the caller
(schema version, dtype policy, git sha, churn epoch, ...).  Offsets are
absolute file offsets, so each column can be wrapped in a read-only
``np.memmap`` directly.

Validation is fail-fast with :class:`~repro.exceptions.ArtifactError`:
wrong magic, unknown format version, truncated file (header, metadata,
or any blob extending past EOF), or undecodable metadata.  Blob CRCs
are *not* verified on the mmap path (that would fault every page in);
pass ``verify=True`` to force a full checksum pass.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.exceptions import ArtifactError

#: File magic -- first 8 bytes of every column artifact.
MAGIC = b"RPROCOLS"

#: Binary layout version understood by this reader.
FORMAT_VERSION = 1

#: Blob alignment (matches the shared-memory layout in
#: :mod:`repro.parallel.shm` and typical cache-line/SIMD alignment).
ALIGNMENT = 64

_HEADER = 24  # magic + version + reserved + metadata length


def _align(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def write_columns(
    path: Union[str, Path],
    columns: Dict[str, np.ndarray],
    extra: Optional[dict] = None,
) -> Path:
    """Write named columns (plus ``extra`` metadata) to ``path``.

    Columns are written C-contiguous in little-endian byte order; the
    in-memory arrays are not modified.  Returns the path written.
    """
    path = Path(path)
    blobs = []
    directory = []
    for name, array in columns.items():
        arr = np.ascontiguousarray(array)
        if arr.dtype.byteorder == ">":  # pragma: no cover - BE platforms
            arr = arr.astype(arr.dtype.newbyteorder("<"))
        blob = arr.tobytes()
        directory.append(
            {
                "name": str(name),
                "dtype": arr.dtype.str.lstrip("<>=|"),
                "shape": list(arr.shape),
                "nbytes": len(blob),
                "crc32": zlib.crc32(blob) & 0xFFFFFFFF,
            }
        )
        blobs.append(blob)

    # Metadata length depends on the offsets and the offsets depend on
    # the metadata length, so iterate the assignment to a fixed point
    # (the rendered length is monotone in the base offset, hence this
    # converges in a handful of rounds regardless of directory size).
    def render(entries) -> bytes:
        return json.dumps(
            {"columns": entries, "extra": extra or {}},
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")

    def assign(base: int) -> bytes:
        offset = base
        for entry, blob in zip(directory, blobs):
            entry["offset"] = offset
            offset = _align(offset + len(blob))
        return render(directory)

    for entry in directory:
        entry["offset"] = 0
    base = _align(_HEADER + len(render(directory)))
    meta = assign(base)
    for _ in range(8):
        if _HEADER + len(meta) <= base:
            break
        base = _align(_HEADER + len(meta))
        meta = assign(base)
    if _HEADER + len(meta) > base:  # pragma: no cover - defensive
        raise ArtifactError("metadata rendering exceeded reserved space")

    with open(path, "wb") as fh:
        fh.write(MAGIC)
        fh.write(
            int(FORMAT_VERSION).to_bytes(4, "little")
            + (0).to_bytes(4, "little")
            + len(meta).to_bytes(8, "little")
        )
        fh.write(meta)
        fh.write(b"\x00" * (base - _HEADER - len(meta)))
        pos = base
        for entry, blob in zip(directory, blobs):
            fh.write(b"\x00" * (entry["offset"] - pos))
            fh.write(blob)
            pos = entry["offset"] + len(blob)
    return path


def _read_directory(path: Path) -> Tuple[list, dict, int]:
    """Parse and validate the header + metadata of an artifact."""
    try:
        size = path.stat().st_size
    except OSError as exc:
        raise ArtifactError(f"cannot stat artifact {path}: {exc}") from exc
    with open(path, "rb") as fh:
        header = fh.read(_HEADER)
        if len(header) < _HEADER or header[:8] != MAGIC:
            raise ArtifactError(
                f"{path} is not a repro column artifact (bad magic)"
            )
        version = int.from_bytes(header[8:12], "little")
        if version != FORMAT_VERSION:
            raise ArtifactError(
                f"{path}: unsupported artifact format version {version} "
                f"(this build reads version {FORMAT_VERSION})"
            )
        meta_len = int.from_bytes(header[16:24], "little")
        if _HEADER + meta_len > size:
            raise ArtifactError(
                f"{path}: truncated artifact (metadata extends past EOF)"
            )
        raw = fh.read(meta_len)
    if len(raw) < meta_len:
        raise ArtifactError(f"{path}: truncated artifact metadata")
    try:
        doc = json.loads(raw.decode("utf-8"))
        columns = doc["columns"]
        extra = doc.get("extra", {})
    except (ValueError, KeyError, UnicodeDecodeError) as exc:
        raise ArtifactError(
            f"{path}: corrupted artifact metadata ({exc})"
        ) from exc
    for entry in columns:
        end = int(entry["offset"]) + int(entry["nbytes"])
        if end > size:
            raise ArtifactError(
                f"{path}: truncated artifact (column {entry['name']!r} "
                f"extends past EOF)"
            )
    return columns, extra, size


def read_columns(
    path: Union[str, Path],
    mmap: bool = True,
    verify: bool = False,
) -> Tuple[Dict[str, np.ndarray], dict]:
    """Read (or map) every column of an artifact.

    Args:
        path: Artifact written by :func:`write_columns`.
        mmap: Map blobs read-only (``np.memmap``) instead of copying
            them into fresh arrays.
        verify: Re-checksum every blob against its stored CRC32 (reads
            all data; defeats the purpose of ``mmap`` but catches blob
            corruption).

    Returns:
        ``(columns, extra)`` -- the name -> array dict and the caller
        metadata stored at write time.

    Raises:
        ArtifactError: On any validation failure (see module docs).
    """
    path = Path(path)
    directory, extra, _ = _read_directory(path)
    out: Dict[str, np.ndarray] = {}
    for entry in directory:
        dtype = np.dtype(entry["dtype"])
        shape = tuple(int(s) for s in entry["shape"])
        count = int(np.prod(shape)) if shape else 1
        if count * dtype.itemsize != int(entry["nbytes"]):
            raise ArtifactError(
                f"{path}: column {entry['name']!r} directory is "
                f"inconsistent (shape/dtype vs byte length)"
            )
        if mmap:
            array = np.memmap(
                path,
                mode="r",
                dtype=dtype,
                shape=shape,
                offset=int(entry["offset"]),
            )
        else:
            with open(path, "rb") as fh:
                fh.seek(int(entry["offset"]))
                array = np.fromfile(fh, dtype=dtype, count=count).reshape(
                    shape
                )
        if verify:
            crc = zlib.crc32(np.ascontiguousarray(array).tobytes())
            if (crc & 0xFFFFFFFF) != int(entry["crc32"]):
                raise ArtifactError(
                    f"{path}: column {entry['name']!r} failed its "
                    f"checksum (corrupted blob)"
                )
        out[entry["name"]] = array
    return out, extra
