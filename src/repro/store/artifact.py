"""Engine and shard-plan artifacts on top of the column container.

An **engine artifact** persists exactly the columns a worker needs to
reconstruct a warm :class:`~repro.engine.ComputeEngine` without
re-scoring -- the same five columns the cluster ships over shared
memory (``customer_idx`` / ``vendor_idx`` / ``distance`` /
``vendor_starts`` / ``bases``) -- plus metadata binding the artifact to
the problem it was built from: artifact schema version, dtype policy
name, git sha, churn epoch, an entity fingerprint (row counts + id
CRCs), and the prune certificate if the engine was pruned.

A **plan artifact** is the existing :meth:`ShardPlan.to_metadata` JSON
round-trip wrapped in the same provenance envelope.

A **sharded store** is a directory: ``plan.json`` plus one engine
artifact per shard (``shard-NNNN.cols``), which
:class:`~repro.engine.ShardedEngine` maps lazily and cluster workers
can boot from instead of shm shipping.

Loads are validated fail-fast: a dtype-policy mismatch, fingerprint
mismatch, or churn-epoch mismatch raises
:class:`~repro.exceptions.ArtifactError` with a message saying which
knob disagrees.
"""

from __future__ import annotations

import json
import subprocess
import zlib
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.exceptions import ArtifactError
from repro.store.columns import read_columns, write_columns

#: Engine-artifact metadata schema understood by this reader.
ENGINE_SCHEMA_VERSION = 1

#: Plan-artifact metadata schema understood by this reader.
PLAN_SCHEMA_VERSION = 1

#: Default file names inside a sharded store directory.
PLAN_FILE = "plan.json"
ENGINE_FILE = "engine.cols"


def shard_artifact_name(shard: int) -> str:
    """Per-shard engine artifact file name inside a store directory."""
    return f"shard-{shard:04d}.cols"


def git_sha() -> str:
    """The repository HEAD sha, or ``"unknown"`` outside a checkout."""
    try:
        root = Path(__file__).resolve().parents[3]
        return (
            subprocess.run(
                ["git", "-C", str(root), "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                check=True,
                timeout=10,
            ).stdout.strip()
            or "unknown"
        )
    except Exception:  # pragma: no cover - environment-dependent
        return "unknown"


def _crc(array: np.ndarray, dtype: str) -> int:
    """Policy-independent CRC of a column (canonical LE dtype).

    Casting float32 columns up to float64 is exact, so the same
    entities fingerprint identically at save and load time.
    """
    canonical = np.ascontiguousarray(array, dtype=dtype)
    return zlib.crc32(canonical.tobytes()) & 0xFFFFFFFF


def problem_fingerprint(arrays) -> dict:
    """An identity check binding an artifact to its entities.

    Ids alone are too weak (synthetic generators hand out sequential
    ids), so the geometry that determines the edge table -- positions,
    radii -- the budgets that determine affordability, and the ad-type
    catalogue are fingerprinted too.
    """
    return {
        "n_customers": int(arrays.n_customers),
        "n_vendors": int(arrays.n_vendors),
        "n_types": int(arrays.n_types),
        "customer_ids_crc32": _crc(arrays.customer_ids, "<i8"),
        "vendor_ids_crc32": _crc(arrays.vendor_ids, "<i8"),
        "customer_xy_crc32": _crc(arrays.customer_xy, "<f8"),
        "vendor_xy_crc32": _crc(arrays.vendor_xy, "<f8"),
        "radius_crc32": _crc(arrays.radius, "<f8"),
        "budget_crc32": _crc(arrays.budget, "<f8"),
        "types_crc32": _crc(
            np.concatenate(
                [
                    np.asarray(arrays.type_cost, dtype="<f8"),
                    np.asarray(arrays.type_effectiveness, dtype="<f8"),
                ]
            ),
            "<f8",
        ),
    }


def _entity_fingerprint(problem, policy) -> dict:
    """:func:`problem_fingerprint` computed from the entity objects.

    Builds only the light 1-D columns (not the interest/tag matrices),
    at the policy's dtypes so the values are bit-identical to what
    ``ProblemArrays.from_entities`` would produce -- this is what lets
    a warm load validate an artifact without paying the full columnar
    rebuild it exists to skip.
    """
    customers = problem.customers
    vendors = problem.vendors
    ad_types = problem.ad_types
    fdt = policy.float_dtype
    idt = policy.id_dtype
    customer_xy = np.array(
        [c.location for c in customers], dtype=fdt
    ).reshape(len(customers), 2)
    vendor_xy = np.array(
        [v.location for v in vendors], dtype=fdt
    ).reshape(len(vendors), 2)
    return {
        "n_customers": len(customers),
        "n_vendors": len(vendors),
        "n_types": len(ad_types),
        "customer_ids_crc32": _crc(
            np.array([c.customer_id for c in customers], dtype=idt), "<i8"
        ),
        "vendor_ids_crc32": _crc(
            np.array([v.vendor_id for v in vendors], dtype=idt), "<i8"
        ),
        "customer_xy_crc32": _crc(customer_xy, "<f8"),
        "vendor_xy_crc32": _crc(vendor_xy, "<f8"),
        "radius_crc32": _crc(
            np.array([v.radius for v in vendors], dtype=fdt), "<f8"
        ),
        "budget_crc32": _crc(
            np.array([v.budget for v in vendors], dtype=fdt), "<f8"
        ),
        "types_crc32": _crc(
            np.concatenate(
                [
                    np.array([t.cost for t in ad_types], dtype=fdt).astype(
                        "<f8"
                    ),
                    np.array(
                        [t.effectiveness for t in ad_types], dtype=fdt
                    ).astype("<f8"),
                ]
            ),
            "<f8",
        ),
    }


def _provenance(dtype_policy: str, churn_epoch: int) -> dict:
    return {
        "dtype_policy": dtype_policy,
        "git_sha": git_sha(),
        "churn_epoch": int(churn_epoch),
    }


# ----------------------------------------------------------------------
# Engine artifacts
# ----------------------------------------------------------------------
#: Entity columns persisted alongside the edge table, so a warm load
#: rebuilds :class:`~repro.engine.ProblemArrays` straight from mapped
#: blobs instead of re-stacking a million entity objects.
ARRAY_COLUMNS = (
    "customer_ids",
    "customer_xy",
    "capacity",
    "view_probability",
    "arrival_time",
    "vendor_ids",
    "vendor_xy",
    "radius",
    "budget",
    "type_ids",
    "type_cost",
    "type_effectiveness",
)

#: Optional 2-D entity columns (absent for tabular utility models).
OPTIONAL_ARRAY_COLUMNS = ("interests", "tags")

#: The edge-table columns (same set the cluster ships over shm).
EDGE_COLUMNS = (
    "customer_idx",
    "vendor_idx",
    "distance",
    "vendor_starts",
    "bases",
)


def save_engine(
    engine, path: Union[str, Path], extra: Optional[dict] = None
) -> Path:
    """Persist a built engine: entity columns, edge table, pair bases.

    Forces the edge/base build if it has not happened yet (saving an
    artifact *is* the cold build one warm-starts from).
    """
    path = Path(path)
    edges = engine.edges
    bases = engine.pair_bases
    arrays = engine.arrays
    certificate = getattr(engine, "certificate", None)
    meta = {
        "kind": "engine",
        "schema_version": ENGINE_SCHEMA_VERSION,
        "n_edges": int(len(edges)),
        "fingerprint": problem_fingerprint(arrays),
        "prune": None if certificate is None else certificate.to_metadata(),
    }
    meta.update(
        _provenance(
            engine.dtype_policy.name, engine.problem.churn.epoch
        )
    )
    if extra:
        meta["user"] = extra
    columns = {
        "customer_idx": edges.customer_idx,
        "vendor_idx": edges.vendor_idx,
        "distance": edges.distance,
        "vendor_starts": edges.vendor_starts,
        "bases": bases,
    }
    for name in ARRAY_COLUMNS:
        columns[f"arrays.{name}"] = getattr(arrays, name)
    for name in OPTIONAL_ARRAY_COLUMNS:
        value = getattr(arrays, name)
        if value is not None:
            columns[f"arrays.{name}"] = value
    path.parent.mkdir(parents=True, exist_ok=True)
    return write_columns(path, columns, extra=meta)


def load_engine(
    path: Union[str, Path],
    problem,
    mmap: bool = True,
    verify: bool = False,
):
    """Attach a saved engine artifact to ``problem``.

    Validates kind/schema, dtype policy, entity fingerprint, and churn
    epoch before handing the mapped columns to
    :meth:`ComputeEngine.from_prescored`.

    Raises:
        ArtifactError: When the file is unusable or does not belong to
            ``problem`` in its current state.
    """
    from repro.engine import CandidateEdges, ComputeEngine, ProblemArrays
    from repro.engine.engine import supports_vectorization

    path = Path(path)
    columns, meta = read_columns(path, mmap=mmap, verify=verify)
    if meta.get("kind") != "engine":
        raise ArtifactError(
            f"{path}: not an engine artifact (kind={meta.get('kind')!r})"
        )
    version = meta.get("schema_version")
    if version != ENGINE_SCHEMA_VERSION:
        raise ArtifactError(
            f"{path}: unknown engine artifact schema version {version} "
            f"(this build reads version {ENGINE_SCHEMA_VERSION})"
        )
    policy = problem.dtype_policy
    if meta.get("dtype_policy") != policy.name:
        raise ArtifactError(
            f"{path}: artifact was built under dtype policy "
            f"{meta.get('dtype_policy')!r} but the problem runs "
            f"{policy.name!r}; rebuild the artifact or construct the "
            f"problem with dtype={meta.get('dtype_policy')!r}"
        )
    epoch = int(problem.churn.epoch)
    saved_epoch = int(meta.get("churn_epoch", 0))
    if saved_epoch != epoch:
        raise ArtifactError(
            f"{path}: artifact was saved at churn epoch {saved_epoch} "
            f"but the problem is at epoch {epoch}; replay the same "
            f"churn (or rebuild the artifact) before loading"
        )
    if not supports_vectorization(problem.utility_model):
        raise ArtifactError(
            f"{path}: the problem's utility model has no vectorized "
            f"kernel, so an engine artifact cannot be attached"
        )
    fingerprint = _entity_fingerprint(problem, policy)
    if meta.get("fingerprint") != fingerprint:
        raise ArtifactError(
            f"{path}: artifact fingerprint does not match the problem "
            f"(saved {meta.get('fingerprint')}, expected {fingerprint})"
        )
    missing = [
        name
        for name in EDGE_COLUMNS + tuple(
            f"arrays.{c}" for c in ARRAY_COLUMNS
        )
        if name not in columns
    ]
    if missing:
        raise ArtifactError(
            f"{path}: engine artifact is missing columns {missing}"
        )
    customer_ids = columns["arrays.customer_ids"]
    vendor_ids = columns["arrays.vendor_ids"]
    arrays = ProblemArrays(
        customer_ids=customer_ids,
        customer_xy=columns["arrays.customer_xy"],
        capacity=columns["arrays.capacity"],
        view_probability=columns["arrays.view_probability"],
        arrival_time=columns["arrays.arrival_time"],
        interests=columns.get("arrays.interests"),
        vendor_ids=vendor_ids,
        vendor_xy=columns["arrays.vendor_xy"],
        radius=columns["arrays.radius"],
        budget=columns["arrays.budget"],
        tags=columns.get("arrays.tags"),
        type_ids=columns["arrays.type_ids"],
        type_cost=columns["arrays.type_cost"],
        type_effectiveness=columns["arrays.type_effectiveness"],
        customer_index={
            int(cid): row for row, cid in enumerate(customer_ids.tolist())
        },
        vendor_index={
            int(vid): row for row, vid in enumerate(vendor_ids.tolist())
        },
        policy=policy,
    )
    engine = ComputeEngine(problem, arrays)
    engine._edges = CandidateEdges(
        customer_idx=columns["customer_idx"],
        vendor_idx=columns["vendor_idx"],
        distance=columns["distance"],
        vendor_starts=columns["vendor_starts"],
    )
    engine._bases = columns["bases"]
    if meta.get("prune"):
        from repro.engine.pruning import PruneCertificate

        engine.certificate = PruneCertificate.from_metadata(meta["prune"])
    return engine


# ----------------------------------------------------------------------
# Shard-plan artifacts
# ----------------------------------------------------------------------
def save_plan(plan, path: Union[str, Path]) -> Path:
    """Persist a shard plan (its metadata round-trip + provenance)."""
    path = Path(path)
    problem = plan.problem
    doc = {
        "kind": "shard-plan",
        "store_schema_version": PLAN_SCHEMA_VERSION,
        "plan": plan.to_metadata(),
    }
    doc.update(
        _provenance(problem.dtype_policy.name, problem.churn.epoch)
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True))
    return path


def load_plan(path: Union[str, Path], problem):
    """Rebuild a shard plan from :func:`save_plan` output.

    Validates the envelope (kind, store schema version, churn epoch)
    here; the vendor-cover and plan-schema checks are the existing
    :meth:`ShardPlan.from_metadata` round-trip.
    """
    from repro.sharding import ShardPlan

    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except OSError as exc:
        raise ArtifactError(f"cannot read plan artifact {path}: {exc}") from exc
    except ValueError as exc:
        raise ArtifactError(
            f"{path}: corrupted plan artifact ({exc})"
        ) from exc
    if doc.get("kind") != "shard-plan":
        raise ArtifactError(
            f"{path}: not a shard-plan artifact (kind={doc.get('kind')!r})"
        )
    version = doc.get("store_schema_version")
    if version != PLAN_SCHEMA_VERSION:
        raise ArtifactError(
            f"{path}: unknown plan artifact schema version {version} "
            f"(this build reads version {PLAN_SCHEMA_VERSION})"
        )
    epoch = int(problem.churn.epoch)
    saved_epoch = int(doc.get("churn_epoch", 0))
    if saved_epoch != epoch:
        raise ArtifactError(
            f"{path}: plan was saved at churn epoch {saved_epoch} but "
            f"the problem is at epoch {epoch}; replay the same churn "
            f"(or rebuild the plan) before loading"
        )
    return ShardPlan.from_metadata(problem, doc["plan"])


# ----------------------------------------------------------------------
# Sharded stores (directory: plan.json + per-shard engine artifacts)
# ----------------------------------------------------------------------
def save_sharded(
    plan,
    directory: Union[str, Path],
    prune: Optional[str] = None,
) -> list:
    """Build and persist every shard's engine under ``directory``.

    Each shard view's engine is built (edges + bases), optionally
    pruned, saved as ``shard-NNNN.cols``, and released again so peak
    memory stays one shard.  ``plan.json`` captures the partition.
    Returns the written paths (plan first).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = [save_plan(plan, directory / PLAN_FILE)]
    for shard in range(plan.n_shards):
        view = plan.problem_for(shard)
        engine = view.acquire_engine()
        if engine is None:
            raise ArtifactError(
                "cannot build a sharded store: the utility model has "
                "no vectorized kernel"
            )
        if prune:
            engine.prune(prune)
        paths.append(
            save_engine(engine, directory / shard_artifact_name(shard))
        )
        plan.release(shard)
    return paths
