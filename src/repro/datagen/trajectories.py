"""Trajectory workloads from check-in sequences (scenario datagen).

The check-in converter (:func:`repro.datagen.checkins.
problem_from_checkins`) follows the paper and flattens every check-in
into an independent customer.  The trajectory converter keeps the
*sequence* instead: each user becomes **one** customer whose initial
position is their first check-in, and every later check-in becomes a
mid-stream relocation in a :class:`~repro.scenario.trajectory.
MoveSchedule` -- the AdCell-style evolving-location workload, driven by
the same simulated (or loaded) feed.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.entities import Customer, Vendor
from repro.core.problem import MUAAProblem
from repro.datagen.checkins import MIN_VENUE_CHECKINS, CheckinDataset
from repro.datagen.config import WorkloadConfig, default_ad_types
from repro.scenario.trajectory import CustomerMove, MoveSchedule
from repro.taxonomy.interest import interest_vector, vendor_vector
from repro.utility.activity import ActivityModel
from repro.utility.model import TaxonomyUtilityModel

__all__ = ["trajectory_from_checkins"]


def _jittered(
    location: Tuple[float, float],
    jitter: np.ndarray,
) -> Tuple[float, float]:
    """A venue location offset into the venue's neighbourhood, clipped
    to the unit square (same rationale as ``problem_from_checkins``:
    a customer is near, not inside, the venue)."""
    return (
        float(min(1.0, max(0.0, location[0] + jitter[0]))),
        float(min(1.0, max(0.0, location[1] + jitter[1]))),
    )


def trajectory_from_checkins(
    dataset: CheckinDataset,
    config: Optional[WorkloadConfig] = None,
    min_venue_checkins: int = MIN_VENUE_CHECKINS,
    max_users: Optional[int] = None,
    max_moves: Optional[int] = None,
    diurnal: bool = True,
    location_jitter: float = 0.02,
    seed: int = 13,
) -> Tuple[MUAAProblem, MoveSchedule]:
    """Build a MUAA instance plus move schedule from a check-in feed.

    Venues pass the paper's ``min_venue_checkins`` filter and become
    vendors exactly as in :func:`~repro.datagen.checkins.
    problem_from_checkins`.  Users with at least one retained check-in
    become customers at their *first* retained check-in's (jittered)
    location and hour; each later check-in in feed order becomes one
    :class:`~repro.scenario.trajectory.CustomerMove`, with all moves
    spread evenly over the arrival stream's tick range.

    Args:
        dataset: The check-in feed (simulated or loaded).
        config: Source of the sampled parameter ranges.
        min_venue_checkins: The paper's venue filter (10).
        max_users: Optional cap (subsample) on trajectory customers.
        max_moves: Optional cap on scheduled moves (earliest kept).
        diurnal: Use the diurnal activity model for utilities.
        location_jitter: Gaussian noise added to customer positions.
        seed: RNG seed for sampling and subsampling.

    Returns:
        ``(problem, move_schedule)``.
    """
    config = config or WorkloadConfig()
    taxonomy = dataset.taxonomy
    rng = np.random.default_rng(seed)

    venue_counts = Counter(r.venue_id for r in dataset.records)
    kept_set = {
        vid for vid, count in venue_counts.items()
        if count >= min_venue_checkins
    }
    kept_venues = sorted(kept_set)

    # Per-user retained check-in sequences, in feed order.
    sequences: Dict[int, List] = defaultdict(list)
    for record in dataset.records:
        if record.venue_id in kept_set:
            sequences[record.user_id].append(record)
    users = sorted(sequences)
    if max_users is not None and len(users) > max_users:
        picks = rng.choice(len(users), size=max_users, replace=False)
        users = sorted(users[i] for i in picks)

    # Interest vectors from the user's *entire* history (Eqs. 1-3),
    # matching the flat converter.
    histories: Dict[int, Counter] = defaultdict(Counter)
    for record in dataset.records:
        histories[record.user_id][record.category] += 1

    n_vendors = len(kept_venues)
    budgets = config.budget_range.sample(rng, n_vendors)
    radii = config.radius_range.sample(rng, n_vendors)
    venue_meta = {}
    for record in dataset.records:
        if record.venue_id in kept_set and record.venue_id not in venue_meta:
            venue_meta[record.venue_id] = record
    vendors = [
        Vendor(
            vendor_id=index,
            location=venue_meta[vid].location,
            radius=float(radii[index]),
            budget=float(budgets[index]),
            tags=vendor_vector(taxonomy, venue_meta[vid].category),
        )
        for index, vid in enumerate(kept_venues)
    ]

    m = len(users)
    capacities = config.capacity_range.sample_int(rng, m)
    probabilities = config.probability_range.sample(rng, m)
    start_jitter = rng.normal(0.0, location_jitter, size=(m, 2))
    customers = []
    later_visits: List[Tuple[int, Tuple[float, float]]] = []
    for row, user in enumerate(users):
        visits = sequences[user]
        first = visits[0]
        customers.append(
            Customer(
                customer_id=row,
                location=_jittered(first.location, start_jitter[row]),
                capacity=int(max(1, capacities[row])),
                view_probability=float(probabilities[row]),
                interests=interest_vector(taxonomy, dict(histories[user])),
                arrival_time=first.hour,
            )
        )
        for visit in visits[1:]:
            later_visits.append((row, visit.location))
    if max_moves is not None and len(later_visits) > max_moves:
        later_visits = later_visits[:max_moves]

    move_jitter = rng.normal(0.0, location_jitter, size=(len(later_visits), 2))
    schedule = MoveSchedule()
    n_moves = len(later_visits)
    for index, (row, location) in enumerate(later_visits):
        tick = max(1, ((index + 1) * m) // (n_moves + 1))
        schedule.add(
            CustomerMove(
                customer_id=row,
                location=_jittered(location, move_jitter[index]),
                tick=tick,
            )
        )

    activity = (
        ActivityModel.diurnal(taxonomy) if diurnal
        else ActivityModel.uniform(taxonomy)
    )
    problem = MUAAProblem(
        customers=customers,
        vendors=vendors,
        ad_types=list(default_ad_types()),
        utility_model=TaxonomyUtilityModel(activity),
    )
    return problem, schedule
