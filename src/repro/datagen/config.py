"""Workload parameters (the paper's Table IV) and the ad-type catalogue.

The extracted paper text shows Table IV's structure but not its cell
values, so the *ranges* below are the ones the text names explicitly in
Section V (budget [1,5]..[40,50], radius [0.01,0.02]..[0.04,0.05],
capacity [1,4]..[1,10]) and the *defaults* are honest reconstructions
recorded in EXPERIMENTS.md: m=10,000 customers and n=500 vendors (named
in the Figure 6 discussion), with mid-range defaults for the rest.

All per-entity values are sampled with the paper's scheme: Gaussian
:math:`\\mathcal{N}((lo+hi)/2, (hi-lo)^2)` truncated to ``[lo, hi]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

import numpy as np

from repro.core.entities import AdType
from repro.exceptions import InvalidProblemError


@dataclass(frozen=True)
class ParameterRange:
    """A closed interval ``[low, high]`` for per-entity sampling."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise InvalidProblemError(
                f"range low {self.low} exceeds high {self.high}"
            )

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Truncated-Gaussian samples per the paper's generation scheme.

        Mean is the midpoint, standard deviation the range width, and
        values are re-drawn (vectorised rejection) until inside the
        interval.  A zero-width range returns constants.
        """
        if self.high == self.low:
            return np.full(size, self.low)
        mean = (self.low + self.high) / 2.0
        std = self.high - self.low
        values = rng.normal(mean, std, size=size)
        bad = (values < self.low) | (values > self.high)
        # Rejection resampling; the acceptance rate for these parameters
        # is ~38%, so a handful of rounds suffice.  Clip as a final
        # guard so the loop always terminates.
        for _ in range(64):
            n_bad = int(bad.sum())
            if n_bad == 0:
                break
            values[bad] = rng.normal(mean, std, size=n_bad)
            bad = (values < self.low) | (values > self.high)
        return np.clip(values, self.low, self.high)

    def sample_int(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Integer-valued truncated-Gaussian samples (for capacities)."""
        return np.rint(self.sample(rng, size)).astype(int)


def default_ad_types() -> Tuple[AdType, ...]:
    """The built-in ad-type catalogue.

    Prices and effectivenesses follow the paper's Table I example (text
    link: $1 / 0.1, photo link: $2 / 0.4) extended with an in-app video
    type, keeping the paper's "higher cost, better effect" monotonicity
    taken from the cited AdWords cost-per-click / click-through-rate
    statistics.
    """
    return (
        AdType(type_id=0, name="text-link", cost=1.0, effectiveness=0.1),
        AdType(type_id=1, name="photo-link", cost=2.0, effectiveness=0.4),
        AdType(type_id=2, name="in-app-video", cost=4.0, effectiveness=0.6),
    )


def make_ad_catalog(q: int) -> Tuple[AdType, ...]:
    """A q-type catalogue following the paper's monotone pattern.

    Costs double per tier; effectiveness grows sublinearly (as in the
    AdWords-derived Table I numbers, richer formats cost more per unit
    of effect).  ``q=2`` reproduces the example's TL/PL cost ratio.

    Args:
        q: Number of ad types (>= 1).

    Raises:
        InvalidProblemError: If ``q`` is not positive.
    """
    if q < 1:
        raise InvalidProblemError(f"need at least one ad type, got {q}")
    catalogue = []
    for k in range(q):
        cost = float(2 ** k)
        # cost^0.85 keeps effectiveness strictly increasing in cost
        # while efficiency (effect per dollar) strictly decreases --
        # richer formats always cost more per unit of effect.
        effectiveness = min(1.0, 0.1 * cost ** 0.85)
        catalogue.append(
            AdType(
                type_id=k,
                name=f"tier-{k}",
                cost=cost,
                effectiveness=effectiveness,
            )
        )
    return tuple(catalogue)


@dataclass(frozen=True)
class WorkloadConfig:
    """Everything needed to generate one MUAA workload.

    Attributes:
        n_customers: Number of customers m.
        n_vendors: Number of vendors n.
        budget_range: Vendor budget range :math:`[B^-, B^+]`.
        radius_range: Vendor radius range :math:`[r^-, r^+]`.
        capacity_range: Customer capacity range :math:`[a^-, a^+]`.
        probability_range: View-probability range :math:`[p^-, p^+]`.
        customer_std: Spread of the Gaussian customer layout (paper:
            :math:`\\mathcal{N}(0.5, 1^2)`, truncated to the unit
            square).
        seed: Master RNG seed.
    """

    n_customers: int = 10_000
    n_vendors: int = 500
    budget_range: ParameterRange = field(
        default_factory=lambda: ParameterRange(5.0, 10.0)
    )
    radius_range: ParameterRange = field(
        default_factory=lambda: ParameterRange(0.02, 0.03)
    )
    capacity_range: ParameterRange = field(
        default_factory=lambda: ParameterRange(1, 4)
    )
    probability_range: ParameterRange = field(
        default_factory=lambda: ParameterRange(0.2, 0.6)
    )
    customer_std: float = 1.0
    seed: int = 7

    def with_overrides(self, **kwargs) -> "WorkloadConfig":
        """A copy with some fields replaced (for parameter sweeps)."""
        return replace(self, **kwargs)


#: The default experimental settings (reconstructed Table IV defaults).
DEFAULTS = WorkloadConfig()

#: Swept values named in Section V-B/V-C, one tuple per figure.
BUDGET_SWEEP = (
    ParameterRange(1, 5),
    ParameterRange(5, 10),
    ParameterRange(10, 20),
    ParameterRange(20, 30),
    ParameterRange(30, 40),
    ParameterRange(40, 50),
)
RADIUS_SWEEP = (
    ParameterRange(0.01, 0.02),
    ParameterRange(0.02, 0.03),
    ParameterRange(0.03, 0.04),
    ParameterRange(0.04, 0.05),
)
CAPACITY_SWEEP = (
    ParameterRange(1, 4),
    ParameterRange(1, 6),
    ParameterRange(1, 8),
    ParameterRange(1, 10),
)
PROBABILITY_SWEEP = (
    ParameterRange(0.1, 0.3),
    ParameterRange(0.2, 0.4),
    ParameterRange(0.3, 0.5),
    ParameterRange(0.4, 0.6),
    ParameterRange(0.5, 0.7),
)
CUSTOMER_COUNT_SWEEP = (4_000, 10_000, 25_000, 50_000, 100_000)
VENDOR_COUNT_SWEEP = (300, 500, 1_000, 1_500, 2_000)
