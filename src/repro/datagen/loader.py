"""Loader for the real Foursquare check-in TSV (Yang et al. [27]).

The paper's real dataset (``dataset_TSMC2014_TKY.txt``) is tab-separated
with the columns::

    userId  venueId  venueCategoryId  venueCategory  latitude  longitude
    timezoneOffset  utcTimestamp

This loader parses that format into :class:`CheckinRecord` objects,
mapping locations linearly into the unit square and timestamps modulo 24
hours, exactly as Section V-A describes.  Category names outside the
built-in taxonomy are registered dynamically under a synthetic
top-level "Imported" tag, so any real category set is accepted.
"""

from __future__ import annotations

import datetime as _dt
from pathlib import Path
from typing import List, Optional, Union

from repro.datagen.checkins import CheckinDataset, CheckinRecord
from repro.exceptions import DataFormatError
from repro.spatial.geometry import normalize_to_unit_square
from repro.taxonomy.foursquare import foursquare_taxonomy
from repro.taxonomy.tree import Taxonomy

#: Column count of the TSMC2014 TSV schema.
_N_COLUMNS = 8

#: Top-level tag under which unknown real-world categories are filed.
IMPORTED_TOP_LEVEL = "Imported"

#: Timestamp format of the dataset, e.g. "Tue Apr 03 18:00:09 +0000 2012".
_TIME_FORMAT = "%a %b %d %H:%M:%S %z %Y"


def _parse_hour(raw: str, timezone_offset_minutes: int) -> float:
    """Local time-of-day in hours from the UTC timestamp string."""
    timestamp = _dt.datetime.strptime(raw, _TIME_FORMAT)
    local = timestamp + _dt.timedelta(minutes=timezone_offset_minutes)
    return (
        local.hour + local.minute / 60.0 + local.second / 3600.0
    ) % 24.0


def load_foursquare_tsv(
    path: Union[str, Path],
    taxonomy: Optional[Taxonomy] = None,
    max_records: Optional[int] = None,
    encoding: str = "latin-1",
    skip_malformed: bool = False,
) -> CheckinDataset:
    """Parse a TSMC2014-format TSV into a check-in dataset.

    Args:
        path: Path to the TSV file.
        taxonomy: Taxonomy to extend with the file's categories; the
            built-in tree by default.
        max_records: Stop after this many parsed rows (for smoke runs).
        encoding: File encoding (the published file is latin-1).
        skip_malformed: Silently drop unparseable rows instead of
            raising (real exports occasionally carry mangled lines).

    Returns:
        The parsed dataset; its taxonomy contains every category seen.

    Raises:
        DataFormatError: On malformed rows (unless ``skip_malformed``).
    """
    taxonomy = taxonomy or foursquare_taxonomy()
    if IMPORTED_TOP_LEVEL not in taxonomy:
        taxonomy.add(IMPORTED_TOP_LEVEL)

    user_ids = {}
    venue_ids = {}
    raw_rows = []
    with open(path, encoding=encoding) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            fields = line.split("\t")
            if len(fields) != _N_COLUMNS:
                if skip_malformed:
                    continue
                raise DataFormatError(
                    f"{path}:{line_number}: expected {_N_COLUMNS} "
                    f"tab-separated fields, got {len(fields)}"
                )
            (user, venue, _category_id, category, lat, lon, tz, stamp) = fields
            try:
                parsed = (
                    user_ids.setdefault(user, len(user_ids)),
                    venue_ids.setdefault(venue, len(venue_ids)),
                    category,
                    float(lat),
                    float(lon),
                    _parse_hour(stamp, int(tz)),
                )
            except (ValueError, KeyError) as exc:
                if skip_malformed:
                    continue
                raise DataFormatError(
                    f"{path}:{line_number}: {exc}"
                ) from exc
            raw_rows.append(parsed)
            if max_records is not None and len(raw_rows) >= max_records:
                break

    # Register unseen categories under the Imported top level.
    for row in raw_rows:
        if row[2] not in taxonomy:
            taxonomy.add(row[2], parent=IMPORTED_TOP_LEVEL)

    # Linear map of (lon, lat) into the unit square (Section V-A).
    mapped = normalize_to_unit_square([(row[4], row[3]) for row in raw_rows])

    records: List[CheckinRecord] = [
        CheckinRecord(
            user_id=row[0],
            venue_id=row[1],
            category=row[2],
            location=mapped[index],
            hour=row[5],
        )
        for index, row in enumerate(raw_rows)
    ]
    return CheckinDataset(records=tuple(records), taxonomy=taxonomy)
