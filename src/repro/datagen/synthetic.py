"""Synthetic MUAA workload generator (Section V-A, synthetic data sets).

Following the paper: customer locations are Gaussian
:math:`\\mathcal{N}(0.5, \\sigma^2)` per axis truncated to the unit
square; vendor locations are uniform; budgets, radii, capacities and
view probabilities are truncated Gaussians over their configured ranges.
Interest/tag vectors are produced through the *full* Section II pipeline
-- each synthetic customer gets a sampled check-in history over the
built-in taxonomy and each vendor a venue category -- so the synthetic
benchmarks exercise the same utility stack as the check-in workloads.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.entities import Customer, Vendor
from repro.core.problem import MUAAProblem
from repro.datagen.config import WorkloadConfig, default_ad_types
from repro.taxonomy.interest import (
    interest_vector,
    propagate_score,
    vendor_vector,
)
from repro.taxonomy.tree import Taxonomy
from repro.taxonomy.foursquare import foursquare_taxonomy
from repro.utility.activity import ActivityModel
from repro.utility.model import TaxonomyUtilityModel

#: Check-ins sampled per synthetic customer's history.
_CHECKINS_PER_CUSTOMER = (10, 40)

#: Distinct categories a synthetic customer is interested in.
_CATEGORIES_PER_CUSTOMER = (4, 8)

#: Customer count at which generation switches to the vectorized
#: sampling path.  Below it the original per-customer loop runs, so
#: every seed published before the fast path existed stays bit-exact.
_FAST_THRESHOLD = 50_000

#: Customers per vectorized sampling chunk (bounds the working set of
#: the interest-matrix assembly to a few hundred MB at any taxonomy).
_FAST_CHUNK = 65_536

#: Zipf exponent of category popularity.  Both customers and vendors
#: draw categories from the same skewed distribution, which is what
#: creates realistic interest overlap (most traffic concentrates on a
#: few popular categories, as in real check-in data).
_CATEGORY_ZIPF = 1.0


def _truncated_gaussian_positions(
    rng: np.random.Generator, size: int, std: float
) -> np.ndarray:
    """Per-axis N(0.5, std^2) positions truncated to the unit square."""
    positions = rng.normal(0.5, std, size=(size, 2))
    bad = (positions < 0.0) | (positions > 1.0)
    for _ in range(256):
        n_bad = int(bad.sum())
        if n_bad == 0:
            break
        positions[bad] = rng.normal(0.5, std, size=n_bad)
        bad = (positions < 0.0) | (positions > 1.0)
    return np.clip(positions, 0.0, 1.0)


def _category_popularity(
    rng: np.random.Generator, n_categories: int
) -> np.ndarray:
    """Zipf popularity over leaf categories (shared by both sides)."""
    ranks = rng.permutation(n_categories) + 1
    popularity = 1.0 / ranks.astype(float) ** _CATEGORY_ZIPF
    return popularity / popularity.sum()


def _sample_interest_vectors(
    rng: np.random.Generator,
    taxonomy: Taxonomy,
    count: int,
    popularity: np.ndarray,
) -> List[np.ndarray]:
    """Sample a check-in history per customer and derive Eq. 1-3 vectors."""
    leaves = taxonomy.leaves()
    vectors: List[np.ndarray] = []
    lo_cat, hi_cat = _CATEGORIES_PER_CUSTOMER
    lo_chk, hi_chk = _CHECKINS_PER_CUSTOMER
    for _ in range(count):
        n_categories = int(rng.integers(lo_cat, hi_cat + 1))
        categories = rng.choice(
            len(leaves), size=n_categories, replace=False, p=popularity
        )
        n_checkins = int(rng.integers(lo_chk, hi_chk + 1))
        counts = rng.multinomial(n_checkins, np.ones(n_categories) / n_categories)
        history = {
            leaves[int(cat)]: int(count_)
            for cat, count_ in zip(categories, counts)
            if count_ > 0
        }
        vectors.append(interest_vector(taxonomy, history))
    return vectors


def _propagation_matrix(taxonomy: Taxonomy) -> np.ndarray:
    """Per-leaf Eq. 2-3 propagation columns.

    ``interest_vector`` is linear in the topic scores before its final
    max-normalization, so one :func:`propagate_score` per leaf (unit
    score) spans every possible check-in history:
    ``raw = sum_k sc(g_k) * P[leaf_k]``.
    """
    leaves = taxonomy.leaves()
    matrix = np.zeros((len(leaves), len(taxonomy)))
    for row, leaf in enumerate(leaves):
        for tag, score in propagate_score(taxonomy, leaf, 1.0).items():
            matrix[row, taxonomy.index(tag)] = score
    return matrix


def _interest_matrix_fast(
    rng: np.random.Generator,
    taxonomy: Taxonomy,
    count: int,
    popularity: np.ndarray,
) -> np.ndarray:
    """Vectorized equivalent of :func:`_sample_interest_vectors`.

    Same sampling distribution, different RNG call sequence (so it is
    gated behind :data:`_FAST_THRESHOLD` rather than replacing the
    loop):

    * category sets via Gumbel-top-k -- the descending order of
      ``log p + Gumbel`` keys enumerates a popularity-weighted sample
      without replacement, so the first ``n_cat`` ranks match
      ``rng.choice(..., replace=False, p=popularity)``;
    * check-in counts as a bincount of uniform slot draws, which is the
      same distribution as ``rng.multinomial(n, uniform)``;
    * interest rows as counts-weighted sums of the per-leaf propagation
      matrix, max-normalized exactly like ``interest_vector`` (the
      constant Eq. 1 factor ``s / n_checkins`` cancels in the
      normalization).
    """
    matrix = _propagation_matrix(taxonomy)
    n_leaves = matrix.shape[0]
    lo_cat, hi_cat = _CATEGORIES_PER_CUSTOMER
    lo_chk, hi_chk = _CHECKINS_PER_CUSTOMER
    log_popularity = np.log(popularity)
    out = np.empty((count, matrix.shape[1]))
    for start in range(0, count, _FAST_CHUNK):
        m = min(_FAST_CHUNK, count - start)
        n_cats = rng.integers(lo_cat, hi_cat + 1, size=m)
        keys = log_popularity[None, :] + rng.gumbel(size=(m, n_leaves))
        top = np.argpartition(-keys, hi_cat - 1, axis=1)[:, :hi_cat]
        rows = np.arange(m)[:, None]
        order = np.argsort(-np.take_along_axis(keys, top, axis=1), axis=1)
        cats = np.take_along_axis(top, order, axis=1)
        n_checkins = rng.integers(lo_chk, hi_chk + 1, size=m)
        slots = (
            rng.random((m, hi_chk)) * n_cats[:, None]
        ).astype(np.int64)
        live = np.arange(hi_chk)[None, :] < n_checkins[:, None]
        counts = np.bincount(
            (rows * hi_cat + slots)[live], minlength=m * hi_cat
        ).reshape(m, hi_cat)
        raw = np.zeros((m, matrix.shape[1]))
        for slot in range(hi_cat):
            raw += counts[:, slot, None] * matrix[cats[:, slot]]
        # n_checkins >= lo_chk > 0 and every leaf column has a positive
        # leaf entry, so the row maximum is always positive.
        raw /= raw.max(axis=1, keepdims=True)
        out[start:start + m] = raw
    return out


def synthetic_problem(
    config: Optional[WorkloadConfig] = None,
    taxonomy: Optional[Taxonomy] = None,
    diurnal: bool = True,
    dtype=None,
    fast: Optional[bool] = None,
) -> MUAAProblem:
    """Generate a complete synthetic MUAA instance.

    Args:
        config: Workload parameters; library defaults when omitted.
        taxonomy: Tag taxonomy; the built-in Foursquare-style tree when
            omitted.
        diurnal: Use the diurnal activity model (uniform when false).
        dtype: Engine dtype policy for the problem (``None``/
            ``"float64"``/``"float32"`` or a
            :class:`~repro.engine.DtypePolicy`); entity generation is
            unaffected.
        fast: Force the vectorized sampling path on or off.  ``None``
            (default) switches it on from :data:`_FAST_THRESHOLD`
            customers.  The fast path samples the same distributions
            but consumes the RNG differently, so small published seeds
            stay on the bit-exact loop.

    Returns:
        A ready-to-solve problem with the taxonomy utility model.
    """
    config = config or WorkloadConfig()
    taxonomy = taxonomy or foursquare_taxonomy()
    rng = np.random.default_rng(config.seed)
    if fast is None:
        fast = config.n_customers >= _FAST_THRESHOLD

    popularity = _category_popularity(rng, len(taxonomy.leaves()))
    customers = _generate_customers(rng, config, taxonomy, popularity, fast)
    vendors = _generate_vendors(rng, config, taxonomy, popularity)

    activity = (
        ActivityModel.diurnal(taxonomy) if diurnal
        else ActivityModel.uniform(taxonomy)
    )
    return MUAAProblem(
        customers=customers,
        vendors=vendors,
        ad_types=list(default_ad_types()),
        utility_model=TaxonomyUtilityModel(activity),
        dtype=dtype,
    )


def _generate_customers(
    rng: np.random.Generator,
    config: WorkloadConfig,
    taxonomy: Taxonomy,
    popularity: np.ndarray,
    fast: bool = False,
) -> List[Customer]:
    m = config.n_customers
    positions = _truncated_gaussian_positions(rng, m, config.customer_std)
    capacities = config.capacity_range.sample_int(rng, m)
    probabilities = config.probability_range.sample(rng, m)
    arrival_hours = rng.uniform(0.0, 24.0, size=m)
    if fast:
        interests = _interest_matrix_fast(rng, taxonomy, m, popularity)
    else:
        interests = _sample_interest_vectors(rng, taxonomy, m, popularity)
    return [
        Customer(
            customer_id=i,
            location=(float(positions[i, 0]), float(positions[i, 1])),
            capacity=int(max(1, capacities[i])),
            view_probability=float(probabilities[i]),
            interests=interests[i],
            arrival_time=float(arrival_hours[i]),
        )
        for i in range(m)
    ]


def _generate_vendors(
    rng: np.random.Generator,
    config: WorkloadConfig,
    taxonomy: Taxonomy,
    popularity: np.ndarray,
) -> List[Vendor]:
    n = config.n_vendors
    positions = rng.uniform(0.0, 1.0, size=(n, 2))
    budgets = config.budget_range.sample(rng, n)
    radii = config.radius_range.sample(rng, n)
    leaves = taxonomy.leaves()
    categories = rng.choice(len(leaves), size=n, p=popularity)
    # Vendor tag vectors are a pure function of the venue leaf; memoize
    # per leaf (copies, so vendors never alias mutable state).  Values
    # are unchanged, so published seeds are unaffected.
    vectors: dict = {}
    tags_for = lambda leaf: vectors.setdefault(
        leaf, vendor_vector(taxonomy, leaf)
    ).copy()
    return [
        Vendor(
            vendor_id=j,
            location=(float(positions[j, 0]), float(positions[j, 1])),
            radius=float(radii[j]),
            budget=float(budgets[j]),
            tags=tags_for(leaves[int(categories[j])]),
        )
        for j in range(n)
    ]
