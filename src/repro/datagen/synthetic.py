"""Synthetic MUAA workload generator (Section V-A, synthetic data sets).

Following the paper: customer locations are Gaussian
:math:`\\mathcal{N}(0.5, \\sigma^2)` per axis truncated to the unit
square; vendor locations are uniform; budgets, radii, capacities and
view probabilities are truncated Gaussians over their configured ranges.
Interest/tag vectors are produced through the *full* Section II pipeline
-- each synthetic customer gets a sampled check-in history over the
built-in taxonomy and each vendor a venue category -- so the synthetic
benchmarks exercise the same utility stack as the check-in workloads.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.entities import Customer, Vendor
from repro.core.problem import MUAAProblem
from repro.datagen.config import WorkloadConfig, default_ad_types
from repro.taxonomy.interest import interest_vector, vendor_vector
from repro.taxonomy.tree import Taxonomy
from repro.taxonomy.foursquare import foursquare_taxonomy
from repro.utility.activity import ActivityModel
from repro.utility.model import TaxonomyUtilityModel

#: Check-ins sampled per synthetic customer's history.
_CHECKINS_PER_CUSTOMER = (10, 40)

#: Distinct categories a synthetic customer is interested in.
_CATEGORIES_PER_CUSTOMER = (4, 8)

#: Zipf exponent of category popularity.  Both customers and vendors
#: draw categories from the same skewed distribution, which is what
#: creates realistic interest overlap (most traffic concentrates on a
#: few popular categories, as in real check-in data).
_CATEGORY_ZIPF = 1.0


def _truncated_gaussian_positions(
    rng: np.random.Generator, size: int, std: float
) -> np.ndarray:
    """Per-axis N(0.5, std^2) positions truncated to the unit square."""
    positions = rng.normal(0.5, std, size=(size, 2))
    bad = (positions < 0.0) | (positions > 1.0)
    for _ in range(256):
        n_bad = int(bad.sum())
        if n_bad == 0:
            break
        positions[bad] = rng.normal(0.5, std, size=n_bad)
        bad = (positions < 0.0) | (positions > 1.0)
    return np.clip(positions, 0.0, 1.0)


def _category_popularity(
    rng: np.random.Generator, n_categories: int
) -> np.ndarray:
    """Zipf popularity over leaf categories (shared by both sides)."""
    ranks = rng.permutation(n_categories) + 1
    popularity = 1.0 / ranks.astype(float) ** _CATEGORY_ZIPF
    return popularity / popularity.sum()


def _sample_interest_vectors(
    rng: np.random.Generator,
    taxonomy: Taxonomy,
    count: int,
    popularity: np.ndarray,
) -> List[np.ndarray]:
    """Sample a check-in history per customer and derive Eq. 1-3 vectors."""
    leaves = taxonomy.leaves()
    vectors: List[np.ndarray] = []
    lo_cat, hi_cat = _CATEGORIES_PER_CUSTOMER
    lo_chk, hi_chk = _CHECKINS_PER_CUSTOMER
    for _ in range(count):
        n_categories = int(rng.integers(lo_cat, hi_cat + 1))
        categories = rng.choice(
            len(leaves), size=n_categories, replace=False, p=popularity
        )
        n_checkins = int(rng.integers(lo_chk, hi_chk + 1))
        counts = rng.multinomial(n_checkins, np.ones(n_categories) / n_categories)
        history = {
            leaves[int(cat)]: int(count_)
            for cat, count_ in zip(categories, counts)
            if count_ > 0
        }
        vectors.append(interest_vector(taxonomy, history))
    return vectors


def synthetic_problem(
    config: Optional[WorkloadConfig] = None,
    taxonomy: Optional[Taxonomy] = None,
    diurnal: bool = True,
) -> MUAAProblem:
    """Generate a complete synthetic MUAA instance.

    Args:
        config: Workload parameters; library defaults when omitted.
        taxonomy: Tag taxonomy; the built-in Foursquare-style tree when
            omitted.
        diurnal: Use the diurnal activity model (uniform when false).

    Returns:
        A ready-to-solve problem with the taxonomy utility model.
    """
    config = config or WorkloadConfig()
    taxonomy = taxonomy or foursquare_taxonomy()
    rng = np.random.default_rng(config.seed)

    popularity = _category_popularity(rng, len(taxonomy.leaves()))
    customers = _generate_customers(rng, config, taxonomy, popularity)
    vendors = _generate_vendors(rng, config, taxonomy, popularity)

    activity = (
        ActivityModel.diurnal(taxonomy) if diurnal
        else ActivityModel.uniform(taxonomy)
    )
    return MUAAProblem(
        customers=customers,
        vendors=vendors,
        ad_types=list(default_ad_types()),
        utility_model=TaxonomyUtilityModel(activity),
    )


def _generate_customers(
    rng: np.random.Generator,
    config: WorkloadConfig,
    taxonomy: Taxonomy,
    popularity: np.ndarray,
) -> List[Customer]:
    m = config.n_customers
    positions = _truncated_gaussian_positions(rng, m, config.customer_std)
    capacities = config.capacity_range.sample_int(rng, m)
    probabilities = config.probability_range.sample(rng, m)
    arrival_hours = rng.uniform(0.0, 24.0, size=m)
    interests = _sample_interest_vectors(rng, taxonomy, m, popularity)
    return [
        Customer(
            customer_id=i,
            location=(float(positions[i, 0]), float(positions[i, 1])),
            capacity=int(max(1, capacities[i])),
            view_probability=float(probabilities[i]),
            interests=interests[i],
            arrival_time=float(arrival_hours[i]),
        )
        for i in range(m)
    ]


def _generate_vendors(
    rng: np.random.Generator,
    config: WorkloadConfig,
    taxonomy: Taxonomy,
    popularity: np.ndarray,
) -> List[Vendor]:
    n = config.n_vendors
    positions = rng.uniform(0.0, 1.0, size=(n, 2))
    budgets = config.budget_range.sample(rng, n)
    radii = config.radius_range.sample(rng, n)
    leaves = taxonomy.leaves()
    categories = rng.choice(len(leaves), size=n, p=popularity)
    return [
        Vendor(
            vendor_id=j,
            location=(float(positions[j, 0]), float(positions[j, 1])),
            radius=float(radii[j]),
            budget=float(budgets[j]),
            tags=vendor_vector(taxonomy, leaves[int(categories[j])]),
        )
        for j in range(n)
    ]
