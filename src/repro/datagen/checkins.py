"""Foursquare-like check-in simulation and check-in -> MUAA conversion.

The paper's real workload is the Tokyo Foursquare check-in dataset of
Yang et al. [27]: 573,703 check-ins of 2,293 users over 61,858 venues,
restricted to venues with at least 10 check-ins (441,060 check-ins over
7,222 venues); every check-in becomes one customer and every retained
venue one vendor.  That dataset is not redistributable here, so
:func:`simulate_checkins` produces a statistically similar synthetic
feed with the same schema:

* Zipf-distributed venue popularity (a few venues absorb most traffic);
* venues clustered in Gaussian "neighbourhoods" in the unit square;
* users with a handful of preferred categories;
* check-in hours drawn from the venue category's diurnal activity.

:func:`problem_from_checkins` then applies exactly the paper's
methodology to either simulated or real (loaded) records.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.entities import Customer, Vendor
from repro.core.problem import MUAAProblem
from repro.datagen.config import WorkloadConfig, default_ad_types
from repro.taxonomy.foursquare import foursquare_taxonomy
from repro.taxonomy.interest import interest_vector, vendor_vector
from repro.taxonomy.tree import Taxonomy
from repro.utility.activity import ActivityModel
from repro.utility.model import TaxonomyUtilityModel

#: Paper's venue filter: keep venues with at least this many check-ins.
MIN_VENUE_CHECKINS = 10


@dataclass(frozen=True)
class CheckinRecord:
    """One check-in event (the schema of the Foursquare dataset [27]).

    Attributes:
        user_id: The checking-in user.
        venue_id: The venue.
        category: The venue's category tag.
        location: Venue location, already mapped into the unit square.
        hour: Check-in time-of-day in hours ``[0, 24)`` (the paper
            folds timestamps modulo 24 hours).
    """

    user_id: int
    venue_id: int
    category: str
    location: Tuple[float, float]
    hour: float


@dataclass(frozen=True)
class CheckinDataset:
    """A check-in feed plus the taxonomy its categories live in."""

    records: Tuple[CheckinRecord, ...]
    taxonomy: Taxonomy

    @property
    def n_users(self) -> int:
        """Number of distinct users."""
        return len({r.user_id for r in self.records})

    @property
    def n_venues(self) -> int:
        """Number of distinct venues."""
        return len({r.venue_id for r in self.records})


def simulate_checkins(
    n_users: int = 500,
    n_venues: int = 800,
    n_checkins: int = 20_000,
    n_clusters: int = 8,
    cluster_std: float = 0.06,
    zipf_exponent: float = 1.1,
    categories_per_user: Tuple[int, int] = (2, 6),
    taxonomy: Optional[Taxonomy] = None,
    seed: int = 11,
) -> CheckinDataset:
    """Simulate a Foursquare-like check-in feed.

    Args:
        n_users: Distinct users.
        n_venues: Distinct venues.
        n_checkins: Total check-in events.
        n_clusters: Gaussian neighbourhood centres for venue locations.
        cluster_std: Spatial spread of each neighbourhood.
        zipf_exponent: Venue popularity skew (>1; larger = more skewed).
        categories_per_user: Range of preferred categories per user.
        taxonomy: Tag taxonomy (built-in Foursquare tree by default).
        seed: RNG seed.

    Returns:
        The simulated dataset.
    """
    taxonomy = taxonomy or foursquare_taxonomy()
    rng = np.random.default_rng(seed)
    leaves = taxonomy.leaves()
    activity = ActivityModel.diurnal(taxonomy)

    # Venues: clustered locations, random categories, Zipf popularity.
    centres = rng.uniform(0.15, 0.85, size=(n_clusters, 2))
    venue_cluster = rng.integers(0, n_clusters, size=n_venues)
    venue_locations = np.clip(
        centres[venue_cluster] + rng.normal(0, cluster_std, size=(n_venues, 2)),
        0.0,
        1.0,
    )
    category_ranks = rng.permutation(len(leaves)) + 1
    category_popularity = 1.0 / category_ranks.astype(float)
    category_popularity /= category_popularity.sum()
    venue_categories = [
        leaves[int(i)]
        for i in rng.choice(len(leaves), size=n_venues, p=category_popularity)
    ]
    ranks = rng.permutation(n_venues) + 1
    popularity = 1.0 / ranks.astype(float) ** zipf_exponent

    # Users prefer a few categories; a venue is attractive to a user in
    # proportion to popularity, boosted strongly when on-category.
    lo, hi = categories_per_user
    user_categories = [
        set(
            rng.choice(
                len(leaves),
                size=int(rng.integers(lo, hi + 1)),
                replace=False,
                p=category_popularity,
            ).tolist()
        )
        for _ in range(n_users)
    ]
    category_index = {name: k for k, name in enumerate(leaves)}

    # Per-category hour sampler: rejection sampling against the diurnal
    # activity curve, pre-tabulated on a half-hour grid.
    grid = np.arange(0.0, 24.0, 0.5)
    category_hour_weights = {}
    for name in leaves:
        weights = np.array([activity.activity(name, h) for h in grid])
        category_hour_weights[name] = weights / weights.sum()

    records: List[CheckinRecord] = []
    users = rng.integers(0, n_users, size=n_checkins)
    for event in range(n_checkins):
        user = int(users[event])
        weights = popularity.copy()
        # Vectorised category boost would need an (n_users, n_venues)
        # table; sampling a preferred category first is cheaper and
        # produces the same marginal behaviour.
        if user_categories[user] and rng.random() < 0.8:
            preferred = leaves[
                int(rng.choice(sorted(user_categories[user])))
            ]
            mask = np.array(
                [c == preferred for c in venue_categories], dtype=bool
            )
            if mask.any():
                weights = np.where(mask, weights, 0.0)
        total = weights.sum()
        if total <= 0:
            weights = popularity
            total = weights.sum()
        venue = int(rng.choice(n_venues, p=weights / total))
        category = venue_categories[venue]
        hour_bucket = rng.choice(len(grid), p=category_hour_weights[category])
        hour = float(grid[hour_bucket] + rng.uniform(0.0, 0.5))
        records.append(
            CheckinRecord(
                user_id=user,
                venue_id=venue,
                category=category,
                location=(
                    float(venue_locations[venue, 0]),
                    float(venue_locations[venue, 1]),
                ),
                hour=hour % 24.0,
            )
        )
    return CheckinDataset(records=tuple(records), taxonomy=taxonomy)


def problem_from_checkins(
    dataset: CheckinDataset,
    config: Optional[WorkloadConfig] = None,
    min_venue_checkins: int = MIN_VENUE_CHECKINS,
    max_customers: Optional[int] = None,
    max_vendors: Optional[int] = None,
    diurnal: bool = True,
    location_jitter: float = 0.02,
    seed: int = 13,
) -> MUAAProblem:
    """Build a MUAA instance from a check-in feed (paper methodology).

    Venues with at least ``min_venue_checkins`` check-ins become vendors
    (budget/radius sampled from ``config`` ranges); every check-in on a
    retained venue becomes one customer at the check-in's location and
    hour, with capacity and view probability sampled from ``config`` and
    the interest vector computed from the user's *entire* history via
    Eqs. 1-3.

    Args:
        dataset: The check-in feed (simulated or loaded).
        config: Source of the sampled parameter ranges.
        min_venue_checkins: The paper's venue filter (10).
        max_customers: Optional cap (subsample) on generated customers.
        max_vendors: Optional cap (subsample) on generated vendors.
        diurnal: Use the diurnal activity model for utilities.
        location_jitter: Gaussian noise added to customer locations.  A
            check-in's coordinates are the *venue's*, so without jitter
            a customer sits at distance exactly 0 from that vendor and
            the 1/d term of Eq. 4 degenerates; a small offset models
            the customer being near, not inside, the venue.
        seed: RNG seed for sampling and subsampling.

    Returns:
        The MUAA problem instance.
    """
    config = config or WorkloadConfig()
    taxonomy = dataset.taxonomy
    rng = np.random.default_rng(seed)

    venue_counts = Counter(r.venue_id for r in dataset.records)
    kept_venues = sorted(
        vid for vid, count in venue_counts.items()
        if count >= min_venue_checkins
    )
    if max_vendors is not None and len(kept_venues) > max_vendors:
        picks = rng.choice(len(kept_venues), size=max_vendors, replace=False)
        kept_venues = sorted(kept_venues[i] for i in picks)
    kept_set = set(kept_venues)

    kept_records = [r for r in dataset.records if r.venue_id in kept_set]
    if max_customers is not None and len(kept_records) > max_customers:
        picks = rng.choice(len(kept_records), size=max_customers, replace=False)
        kept_records = [kept_records[i] for i in sorted(picks)]

    # Interest vectors per user from the full history (all records).
    histories: Dict[int, Counter] = defaultdict(Counter)
    for record in dataset.records:
        histories[record.user_id][record.category] += 1
    user_vectors: Dict[int, np.ndarray] = {
        user: interest_vector(taxonomy, dict(history))
        for user, history in histories.items()
    }

    n_vendors = len(kept_venues)
    budgets = config.budget_range.sample(rng, n_vendors)
    radii = config.radius_range.sample(rng, n_vendors)
    venue_meta: Dict[int, CheckinRecord] = {}
    for record in dataset.records:
        if record.venue_id in kept_set and record.venue_id not in venue_meta:
            venue_meta[record.venue_id] = record
    vendors = [
        Vendor(
            vendor_id=index,
            location=venue_meta[vid].location,
            radius=float(radii[index]),
            budget=float(budgets[index]),
            tags=vendor_vector(taxonomy, venue_meta[vid].category),
        )
        for index, vid in enumerate(kept_venues)
    ]

    m = len(kept_records)
    capacities = config.capacity_range.sample_int(rng, m)
    probabilities = config.probability_range.sample(rng, m)
    jitter = rng.normal(0.0, location_jitter, size=(m, 2))
    customers = [
        Customer(
            customer_id=i,
            location=(
                float(min(1.0, max(0.0, record.location[0] + jitter[i, 0]))),
                float(min(1.0, max(0.0, record.location[1] + jitter[i, 1]))),
            ),
            capacity=int(max(1, capacities[i])),
            view_probability=float(probabilities[i]),
            interests=user_vectors[record.user_id],
            arrival_time=record.hour,
        )
        for i, record in enumerate(kept_records)
    ]

    activity = (
        ActivityModel.diurnal(taxonomy) if diurnal
        else ActivityModel.uniform(taxonomy)
    )
    return MUAAProblem(
        customers=customers,
        vendors=vendors,
        ad_types=list(default_ad_types()),
        utility_model=TaxonomyUtilityModel(activity),
    )
