"""Small random MUAA instances with tabular utilities.

These are the instances used for property tests, ratio measurements,
and anywhere an exact optimum must stay tractable: preferences are
drawn directly per pair (no taxonomy pipeline), so utilities are dense
and positive and the instance is fully determined by one seed.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.entities import AdType, Customer, Vendor
from repro.core.problem import MUAAProblem
from repro.utility.model import TabularUtilityModel


def random_tabular_problem(
    seed: int = 0,
    n_customers: int = 5,
    n_vendors: int = 4,
    n_types: int = 2,
    capacity: Optional[Tuple[int, int]] = (1, 3),
    budget: Tuple[float, float] = (2.0, 6.0),
    coverage: float = 1.0,
) -> MUAAProblem:
    """A small random MUAA instance with tabular utilities.

    Args:
        seed: RNG seed (fully determines the instance).
        n_customers: Number of customers.
        n_vendors: Number of vendors.
        n_types: Number of ad types; type k costs ``k+1`` with
            effectiveness ``((k+1)/n_types)**0.8``, so cheaper types
            have the better efficiency and pricier ones the higher
            utility -- the tension the ad-type choice is about.
        capacity: Range of customer capacities.
        budget: Range of vendor budgets.
        coverage: Fraction of pairs that are range-valid (vendors get a
            radius covering roughly this fraction of the unit square).
    """
    rng = np.random.default_rng(seed)
    ad_types = [
        AdType(
            type_id=k,
            name=f"type-{k}",
            cost=float(k + 1),
            effectiveness=float(((k + 1) / n_types) ** 0.8),
        )
        for k in range(n_types)
    ]
    customers = [
        Customer(
            customer_id=i,
            location=(float(rng.uniform()), float(rng.uniform())),
            capacity=int(rng.integers(capacity[0], capacity[1] + 1)),
            view_probability=float(rng.uniform(0.1, 0.9)),
        )
        for i in range(n_customers)
    ]
    # Floor at a tiny positive radius: problem construction rejects
    # non-positive radii, and ``coverage=0.0`` ("no valid pairs") still
    # holds -- no random point lands within 1e-9 of a vendor.
    radius = max(float(np.sqrt(2.0) * coverage), 1e-9)
    vendors = [
        Vendor(
            vendor_id=j,
            location=(float(rng.uniform()), float(rng.uniform())),
            radius=radius,
            budget=float(rng.uniform(*budget)),
        )
        for j in range(n_vendors)
    ]
    preferences = {
        (i, j): float(rng.uniform(0.05, 1.0))
        for i in range(n_customers)
        for j in range(n_vendors)
    }
    return MUAAProblem(
        customers=customers,
        vendors=vendors,
        ad_types=ad_types,
        utility_model=TabularUtilityModel(preferences=preferences),
    )
