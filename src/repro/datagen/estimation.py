"""Estimating customer view probabilities from ad logs (Section II-A).

The paper: "each customer has a probability :math:`p_i` to click/check
her/his received ads, which can be estimated from the historical data of
the numbers of total viewed ads and the total received ads for each
customer with maximum likelihood estimation".

For a Bernoulli view process the MLE is simply views/received; with few
observations that estimate is brittle (a customer with 1 received and 1
viewed ad is not a guaranteed clicker), so the estimator also offers
Laplace/Beta smoothing -- the posterior mean under a Beta(alpha, beta)
prior -- which is what a production broker would ship.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.exceptions import DataFormatError


@dataclass(frozen=True)
class AdLogRecord:
    """One historical impression: an ad was received and maybe viewed.

    Attributes:
        customer_id: The receiving customer.
        viewed: Whether the customer clicked/checked the ad.
    """

    customer_id: int
    viewed: bool


def mle_view_probabilities(
    records: Iterable[AdLogRecord],
    alpha: float = 0.0,
    beta: float = 0.0,
) -> Dict[int, float]:
    """Per-customer view-probability estimates from an impression log.

    Args:
        records: Historical impressions.
        alpha: Beta-prior pseudo-views (0 gives the pure MLE).
        beta: Beta-prior pseudo-non-views.

    Returns:
        customer_id -> estimated :math:`p_i` in ``[0, 1]``.

    Raises:
        DataFormatError: On negative pseudo-counts.
    """
    if alpha < 0 or beta < 0:
        raise DataFormatError("pseudo-counts must be non-negative")
    received: Dict[int, int] = {}
    viewed: Dict[int, int] = {}
    for record in records:
        received[record.customer_id] = received.get(record.customer_id, 0) + 1
        if record.viewed:
            viewed[record.customer_id] = viewed.get(record.customer_id, 0) + 1
    estimates: Dict[int, float] = {}
    for customer_id, total in received.items():
        hits = viewed.get(customer_id, 0)
        denominator = total + alpha + beta
        if denominator <= 0:
            continue
        estimates[customer_id] = (hits + alpha) / denominator
    return estimates


def smoothed_view_probabilities(
    records: Iterable[AdLogRecord],
    prior_mean: float = 0.2,
    prior_strength: float = 2.0,
) -> Dict[int, float]:
    """Beta-smoothed estimates parameterised by a prior mean/strength.

    ``prior_mean`` is the fleet-wide view rate to shrink towards and
    ``prior_strength`` how many pseudo-impressions it is worth.

    Raises:
        DataFormatError: On an out-of-range prior mean or strength.
    """
    if not 0 < prior_mean < 1:
        raise DataFormatError(f"prior_mean must be in (0,1), got {prior_mean}")
    if prior_strength <= 0:
        raise DataFormatError("prior_strength must be positive")
    return mle_view_probabilities(
        records,
        alpha=prior_mean * prior_strength,
        beta=(1 - prior_mean) * prior_strength,
    )


def simulate_ad_log(
    true_probabilities: Dict[int, float],
    impressions_per_customer: Tuple[int, int] = (5, 50),
    seed: int = 0,
) -> List[AdLogRecord]:
    """Simulate an impression log from known ground-truth probabilities.

    Used to validate the estimator end to end: estimates from the
    simulated log should recover the ground truth as the log grows.

    Args:
        true_probabilities: customer_id -> true :math:`p_i`.
        impressions_per_customer: Range of impressions each customer
            accumulates.
        seed: RNG seed.
    """
    rng = np.random.default_rng(seed)
    records: List[AdLogRecord] = []
    lo, hi = impressions_per_customer
    for customer_id, probability in true_probabilities.items():
        count = int(rng.integers(lo, hi + 1))
        views = rng.random(count) < probability
        records.extend(
            AdLogRecord(customer_id=customer_id, viewed=bool(v))
            for v in views
        )
    return records
