"""Workload generation: configs, synthetic data, check-ins, and loaders."""

from repro.datagen.checkins import (
    MIN_VENUE_CHECKINS,
    CheckinDataset,
    CheckinRecord,
    problem_from_checkins,
    simulate_checkins,
)
from repro.datagen.config import (
    BUDGET_SWEEP,
    CAPACITY_SWEEP,
    CUSTOMER_COUNT_SWEEP,
    DEFAULTS,
    PROBABILITY_SWEEP,
    RADIUS_SWEEP,
    VENDOR_COUNT_SWEEP,
    ParameterRange,
    WorkloadConfig,
    default_ad_types,
)
from repro.datagen.estimation import (
    AdLogRecord,
    mle_view_probabilities,
    simulate_ad_log,
    smoothed_view_probabilities,
)
from repro.datagen.loader import load_foursquare_tsv
from repro.datagen.stats import InstanceStats, instance_card, instance_stats
from repro.datagen.synthetic import synthetic_problem
from repro.datagen.tabular import random_tabular_problem

__all__ = [
    "MIN_VENUE_CHECKINS",
    "CheckinDataset",
    "CheckinRecord",
    "problem_from_checkins",
    "simulate_checkins",
    "BUDGET_SWEEP",
    "CAPACITY_SWEEP",
    "CUSTOMER_COUNT_SWEEP",
    "DEFAULTS",
    "PROBABILITY_SWEEP",
    "RADIUS_SWEEP",
    "VENDOR_COUNT_SWEEP",
    "ParameterRange",
    "WorkloadConfig",
    "default_ad_types",
    "load_foursquare_tsv",
    "synthetic_problem",
    "random_tabular_problem",
    "AdLogRecord",
    "mle_view_probabilities",
    "simulate_ad_log",
    "smoothed_view_probabilities",
    "InstanceStats",
    "instance_card",
    "instance_stats",
]
