"""Workload statistics: one-look "instance cards" for MUAA problems.

Knowing whether budgets or capacities bind, how many vendors a typical
customer sees, and how skewed the efficiency distribution is explains
most algorithm behaviour differences; this module computes those
numbers and renders them as a small text card (used by the examples and
handy when debugging an experiment configuration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.problem import MUAAProblem


@dataclass(frozen=True)
class InstanceStats:
    """Summary statistics of one MUAA instance.

    Attributes:
        n_customers: Number of customers m.
        n_vendors: Number of vendors n.
        n_valid_pairs: Range-valid customer-vendor pairs.
        mean_valid_vendors: Mean in-range vendors per customer.
        mean_valid_customers: Mean in-range customers per vendor.
        total_budget: Sum of vendor budgets.
        total_capacity: Sum of customer capacities.
        max_affordable_ads: Total budget divided by the cheapest ad
            price (a hard ceiling on assignment size).
        positive_pair_fraction: Fraction of valid pairs with positive
            utility.
        efficiency_quantiles: (5%, 50%, 95%) of positive efficiencies,
            or ``None`` when there are none.
        theta: The Theorem III.1 factor of the instance.
    """

    n_customers: int
    n_vendors: int
    n_valid_pairs: int
    mean_valid_vendors: float
    mean_valid_customers: float
    total_budget: float
    total_capacity: int
    max_affordable_ads: float
    positive_pair_fraction: float
    efficiency_quantiles: Optional[tuple]
    theta: float

    @property
    def budget_bound(self) -> bool:
        """Whether the budget ceiling binds before capacities do."""
        return self.max_affordable_ads < min(
            self.total_capacity, self.n_valid_pairs
        )


def instance_stats(problem: MUAAProblem) -> InstanceStats:
    """Compute the summary statistics of an instance."""
    pairs = list(problem.valid_pairs())
    efficiencies: List[float] = []
    positive = 0
    for customer_id, vendor_id in pairs:
        best = problem.best_instance_for_pair(
            customer_id, vendor_id, by="efficiency"
        )
        if best is not None and best.utility > 0:
            positive += 1
            efficiencies.append(best.efficiency)
    total_budget = sum(v.budget for v in problem.vendors)
    quantiles = None
    if efficiencies:
        values = np.array(efficiencies)
        quantiles = tuple(
            float(np.quantile(values, q)) for q in (0.05, 0.5, 0.95)
        )
    m = len(problem.customers)
    n = len(problem.vendors)
    return InstanceStats(
        n_customers=m,
        n_vendors=n,
        n_valid_pairs=len(pairs),
        mean_valid_vendors=len(pairs) / m if m else 0.0,
        mean_valid_customers=len(pairs) / n if n else 0.0,
        total_budget=total_budget,
        total_capacity=sum(c.capacity for c in problem.customers),
        max_affordable_ads=(
            total_budget / problem.min_cost if problem.min_cost > 0 else 0.0
        ),
        positive_pair_fraction=positive / len(pairs) if pairs else 0.0,
        efficiency_quantiles=quantiles,
        theta=problem.theta(),
    )


def instance_card(problem: MUAAProblem) -> str:
    """Render the statistics as a printable card."""
    stats = instance_stats(problem)
    lines = [
        "MUAA instance",
        f"  customers / vendors:     {stats.n_customers} / {stats.n_vendors}",
        f"  valid pairs:             {stats.n_valid_pairs} "
        f"({stats.mean_valid_vendors:.1f} vendors/customer, "
        f"{stats.mean_valid_customers:.1f} customers/vendor)",
        f"  positive-utility pairs:  {stats.positive_pair_fraction:.1%}",
        f"  total budget:            {stats.total_budget:.1f} "
        f"(<= {stats.max_affordable_ads:.0f} ads)",
        f"  total capacity:          {stats.total_capacity}",
        f"  binding side:            "
        f"{'budget' if stats.budget_bound else 'capacity/pairs'}",
        f"  theta (Thm III.1):       {stats.theta:.3f}",
    ]
    if stats.efficiency_quantiles is not None:
        q05, q50, q95 = stats.efficiency_quantiles
        lines.append(
            f"  efficiency p5/p50/p95:   {q05:.4f} / {q50:.4f} / {q95:.4f}"
        )
    return "\n".join(lines)
