"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``      -- run the full algorithm panel on a synthetic instance
* ``figure N``  -- regenerate paper figure N's tables (3-8)
* ``ratio``     -- measure empirical approximation/competitive ratios
* ``calibrate`` -- print O-AFA's gamma/g calibration for a workload
* ``obs``       -- inspect recorded traces (``obs summary TRACE``)
* ``serve``     -- run the async micro-batching serving front-end
  over a seeded open-loop arrival stream (``docs/serving.md``)
* ``serve-cluster`` -- stream a workload through the process-per-shard
  cluster (optionally killing a shard mid-stream to watch recovery)
* ``build-artifact`` -- pre-build mmap-able engine artifacts (single or
  sharded) for ``--artifact`` consumers
* ``info``      -- runtime/backend card of this installation

``demo`` and ``reproduce`` accept ``--artifact DIR`` (a fingerprint-
keyed engine artifact cache: warm runs mmap their engines instead of
re-scoring); ``serve-cluster --artifact DIR`` boots shard workers from
a sharded store written by ``build-artifact --shards S``.

``demo``, ``figure`` and ``reproduce`` accept ``--trace PATH`` (record
a merged Chrome-trace timeline of the run, loadable in
chrome://tracing or Perfetto) and ``--metrics PATH`` (write the run's
metrics snapshot as JSON).

All commands are deterministic for a fixed ``--seed``.
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import List, Optional

from repro.experiments.report import full_report


def _parallel_from_args(args: argparse.Namespace):
    """The :class:`ParallelConfig` for ``--jobs``, or ``None`` (serial)."""
    jobs = getattr(args, "jobs", 1)
    if jobs == 1:
        return None
    from repro.parallel import ParallelConfig

    return ParallelConfig(jobs=jobs)


def _artifact_cache_from_args(args: argparse.Namespace):
    """The installed engine cache for ``--artifact DIR``, or a no-op."""
    directory = getattr(args, "artifact", None)
    if directory is None:
        from contextlib import nullcontext

        return nullcontext(None)
    from repro.store import engine_cache

    return engine_cache(directory)


def _report_cache(cache) -> None:
    if cache is not None:
        print(
            f"artifact cache {cache.directory}: "
            f"{cache.hits} warm load(s), {cache.misses} build(s)"
        )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Maximizing the Utility in Location-Based "
            "Mobile Advertising' (ICDE 2019)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_jobs(command) -> None:
        command.add_argument(
            "--jobs", "-j", type=int, default=1, metavar="N",
            help="worker processes for the experiment fan-out "
                 "(default 1 = serial; 0 = all cores; results are "
                 "identical at any value)",
        )

    def add_shards(command) -> None:
        command.add_argument(
            "--shards", "-s", type=int, default=1, metavar="S",
            help="spatial shards for the solvers (default 1 = "
                 "unsharded; peak memory becomes the largest shard; "
                 "total utility matches unsharded to within 1e-9)",
        )

    def add_obs(command) -> None:
        command.add_argument(
            "--trace", type=str, default=None, metavar="PATH",
            help="record the run and write a Chrome-trace timeline "
                 "(worker processes appear as separate lanes; load in "
                 "chrome://tracing or Perfetto)",
        )
        command.add_argument(
            "--metrics", type=str, default=None, metavar="PATH",
            help="write the run's metrics snapshot (counters, gauges, "
                 "histograms) as JSON",
        )

    def add_artifact(command) -> None:
        command.add_argument(
            "--artifact", type=str, default=None, metavar="DIR",
            help="engine artifact cache directory: problems warm-load "
                 "their engine from a matching artifact (mmap, no "
                 "re-scoring) and persist freshly built ones for the "
                 "next run; entries are fingerprint-keyed so a stale "
                 "artifact is never used (see docs/scale.md)",
        )

    def add_dtype(command) -> None:
        command.add_argument(
            "--dtype", choices=("float64", "float32"), default="float64",
            help="engine dtype policy: float64 = bitwise parity "
                 "reference; float32 = compact columns (half the edge "
                 "table, utilities within 1e-3 relative)",
        )

    demo = sub.add_parser("demo", help="run the algorithm panel once")
    demo.add_argument("--customers", type=int, default=2_000)
    demo.add_argument("--vendors", type=int, default=150)
    demo.add_argument("--seed", type=int, default=7)
    from repro.scenario import DEFAULT_SCENARIO, scenario_names

    demo.add_argument(
        "--scenario", type=str, default=DEFAULT_SCENARIO,
        choices=scenario_names(),
        help="workload scenario to realize before solving "
             f"(default: {DEFAULT_SCENARIO}, the paper's single-slot "
             "static setting; see `repro info` for the card)",
    )
    add_jobs(demo)
    add_shards(demo)
    add_obs(demo)
    add_artifact(demo)
    add_dtype(demo)

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("number", type=int, choices=range(3, 12),
                        help="figure number (3-8 paper, 9-11 scenarios)")
    figure.add_argument("--scale", type=float, default=None,
                        help="fraction of the paper's workload size")
    figure.add_argument("--seed", type=int, default=42)
    figure.add_argument("--csv", type=str, default=None,
                        help="also write the rows as CSV")
    figure.add_argument("--json", type=str, default=None,
                        help="also write the rows as JSON")
    add_jobs(figure)
    add_shards(figure)
    add_obs(figure)

    ratio = sub.add_parser(
        "ratio", help="empirical ratios vs the exact optimum"
    )
    ratio.add_argument("--instances", type=int, default=10)
    ratio.add_argument("--g", type=float, default=10.0)
    ratio.add_argument("--seed", type=int, default=0)

    calibrate = sub.add_parser(
        "calibrate", help="estimate gamma_min/gamma_max/g for a workload"
    )
    calibrate.add_argument("--customers", type=int, default=2_000)
    calibrate.add_argument("--vendors", type=int, default=150)
    calibrate.add_argument("--seed", type=int, default=7)

    bounds = sub.add_parser(
        "bounds", help="upper bounds and certified optimality gaps"
    )
    bounds.add_argument("--customers", type=int, default=1_000)
    bounds.add_argument("--vendors", type=int, default=80)
    bounds.add_argument("--seed", type=int, default=7)

    reproduce = sub.add_parser(
        "reproduce",
        help="run the whole evaluation section (figs 3-8 + scenario "
             "figs 9-11)",
    )
    reproduce.add_argument("--scale-multiplier", type=float, default=1.0)
    reproduce.add_argument("--seed", type=int, default=42)
    reproduce.add_argument("--out", type=str, default=None,
                           help="directory for the regenerated tables")
    reproduce.add_argument(
        "--figures", type=int, nargs="+", default=None,
        choices=range(3, 12), help="subset of figures to run",
    )
    add_jobs(reproduce)
    add_shards(reproduce)
    add_obs(reproduce)
    add_artifact(reproduce)

    stats = sub.add_parser(
        "stats", help="print the instance card of a workload"
    )
    stats.add_argument("--customers", type=int, default=2_000)
    stats.add_argument("--vendors", type=int, default=150)
    stats.add_argument("--seed", type=int, default=7)
    stats.add_argument(
        "--checkins", action="store_true",
        help="use the check-in workload instead of the synthetic one",
    )

    obs = sub.add_parser("obs", help="inspect recorded observability data")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_summary = obs_sub.add_parser(
        "summary",
        help="per-stage wall time and latency percentiles of a trace",
    )
    # dest must not be "trace": main() treats an args.trace attribute
    # as the recording flag, and obs must never record over its input.
    obs_summary.add_argument(
        "trace_file", metavar="TRACE",
        help="Chrome-trace JSON written by --trace",
    )

    serving = sub.add_parser(
        "serve",
        help="run the async micro-batching serving front-end over a "
             "seeded open-loop arrival stream",
    )
    serving.add_argument("--customers", type=int, default=1_000)
    serving.add_argument("--vendors", type=int, default=100)
    serving.add_argument("--seed", type=int, default=7)
    serving.add_argument(
        "--shards", "-s", type=int, default=1, metavar="S",
        help="route requests across S shard views (default 1 = "
             "unsharded; decisions match the unsharded stream)",
    )
    serving.add_argument(
        "--rps", type=float, default=500.0,
        help="mean offered arrival rate of the open-loop schedule",
    )
    serving.add_argument(
        "--arrival", choices=("poisson", "bursty"), default="poisson",
        help="seeded arrival process of the schedule",
    )
    serving.add_argument(
        "--mode", choices=("replay", "async"), default="replay",
        help="replay = deterministic virtual-time closed loop "
             "(default); async = real asyncio event loop with "
             "wall-clock waits",
    )
    serving.add_argument(
        "--max-batch", type=int, default=32,
        help="flush a micro-batch at this many queued requests",
    )
    serving.add_argument(
        "--max-wait-ms", type=float, default=5.0,
        help="flush when the oldest queued request waited this long",
    )
    serving.add_argument(
        "--queue-depth", type=int, default=256,
        help="bounded queue capacity; overflow sheds the "
             "lowest-expected-utility request",
    )
    serving.add_argument(
        "--rate-limit", type=float, default=None, metavar="RPS",
        help="token-bucket sustained admission rate (default: off)",
    )
    serving.add_argument(
        "--burst", type=float, default=None,
        help="token-bucket size (default max(1, rate))",
    )
    serving.add_argument(
        "--deadline-ms", type=float, default=None,
        help="per-request deadline; late work is dropped, not served",
    )
    serving.add_argument(
        "--artifact", type=str, default=None, metavar="DIR",
        help="with --shards S > 1: a sharded store written by `repro "
             "build-artifact --shards S`; only shards a batch routes "
             "to are demand-paged from mmap.  With --shards 1: a "
             "fingerprint-keyed engine cache (as in demo/reproduce)",
    )
    add_obs(serving)

    serve = sub.add_parser(
        "serve-cluster",
        help="serve a synthetic arrival stream through the "
             "process-per-shard cluster",
    )
    serve.add_argument("--customers", type=int, default=1_000)
    serve.add_argument("--vendors", type=int, default=100)
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument(
        "--shards", "-s", type=int, default=4, metavar="S",
        help="worker count (one shard and one worker per shard)",
    )
    serve.add_argument(
        "--transport", choices=("process", "inline"), default="process",
        help="process = one forked worker per shard over shared "
             "memory; inline = deterministic in-process stand-ins",
    )
    serve.add_argument(
        "--kill-shard", type=int, default=None, metavar="SHARD",
        help="chaos: SIGKILL this shard's worker mid-stream (the "
             "control plane restarts it with replay)",
    )
    serve.add_argument(
        "--kill-tick", type=int, default=None, metavar="TICK",
        help="arrival index of the kill (default: halfway)",
    )
    serve.add_argument(
        "--churn", type=int, default=0, metavar="N",
        help="apply N seeded vendor join/leave/exhaust/migrate events "
             "spread over the stream (delta-spliced, never rebuilt)",
    )
    serve.add_argument(
        "--churn-seed", type=int, default=None, metavar="SEED",
        help="seed of the churn event stream (default: --seed)",
    )
    serve.add_argument(
        "--artifact", type=str, default=None, metavar="DIR",
        help="sharded artifact store written by `repro build-artifact "
             "--shards S` (plan.json + shard-NNNN.cols): workers boot "
             "their shard engine from the mapped file instead of "
             "scoring locally or shipping shm columns",
    )
    add_obs(serve)

    build = sub.add_parser(
        "build-artifact",
        help="pre-build engine artifacts for a synthetic workload",
    )
    build.add_argument("--customers", type=int, default=2_000)
    build.add_argument("--vendors", type=int, default=150)
    build.add_argument("--seed", type=int, default=7)
    build.add_argument(
        "--radius", type=float, nargs=2, default=(0.03, 0.06),
        metavar=("LO", "HI"),
        help="vendor radius range of the workload; must match the "
             "consumer's (demo/figures use 0.03 0.06, serve-cluster "
             "uses 0.15 0.25)",
    )
    add_dtype(build)
    build.add_argument(
        "--shards", "-s", type=int, default=1, metavar="S",
        help="1 (default) writes one fingerprint-keyed engine artifact "
             "(consumed by demo/reproduce --artifact); S > 1 writes a "
             "sharded store -- plan.json + one artifact per shard "
             "(consumed by serve-cluster --artifact)",
    )
    build.add_argument(
        "--prune", choices=("exact", "lp"), default=None,
        help="prune the edge table before saving; 'exact' is certified "
             "utility-neutral for every solver, 'lp' additionally "
             "drops below-LP-marginal edges (bound-preserving)",
    )
    build.add_argument(
        "--out", type=str, required=True, metavar="DIR",
        help="output directory for the artifact(s)",
    )

    info = sub.add_parser(
        "info", help="print version, runtime, and backend information"
    )
    info.add_argument("--customers", type=int, default=500)
    info.add_argument("--vendors", type=int, default=50)
    info.add_argument("--seed", type=int, default=7)
    info.add_argument(
        "--shards", "-s", type=int, default=4, metavar="S",
        help="shard count of the sample shard card (default 4)",
    )
    return parser


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.core.validation import validate_assignment
    from repro.datagen.config import ParameterRange, WorkloadConfig
    from repro.datagen.synthetic import synthetic_problem
    from repro.experiments.runner import run_panel
    from repro.scenario import DEFAULT_SCENARIO, get_scenario

    problem = synthetic_problem(
        WorkloadConfig(
            n_customers=args.customers,
            n_vendors=args.vendors,
            radius_range=ParameterRange(0.03, 0.06),
            seed=args.seed,
        ),
        dtype=getattr(args, "dtype", None),
    )
    scenario = get_scenario(getattr(args, "scenario", DEFAULT_SCENARIO))
    run = scenario.realize(problem, args.seed)
    problem = run.problem
    if run.scenario != DEFAULT_SCENARIO:
        moved = f", {len(run.moves)} moves" if run.moves else ""
        print(f"scenario: {run.scenario} ({len(problem.customers)} "
              f"customers x {len(problem.vendors)} vendors{moved})")
    with _artifact_cache_from_args(args) as cache:
        results = run_panel(
            problem, seed=args.seed, parallel=_parallel_from_args(args),
            shards=getattr(args, "shards", 1),
            moves=run.moves,
        )
    _report_cache(cache)
    print(f"{'algorithm':10s} {'utility':>12s} {'ads':>6s} {'time':>9s}")
    for name, result in results.items():
        # Range validation assumes static locations; under a move
        # schedule streaming members legitimately assign at mid-stream
        # positions, so the static check does not apply.
        flag = "" if run.moves is not None or validate_assignment(
            problem, result.assignment
        ).ok else "  INVALID"
        print(
            f"{name:10s} {result.total_utility:12.3f} "
            f"{len(result.assignment):6d} {result.wall_time:8.3f}s{flag}"
        )
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments.figures import figure_by_number

    runner, default_scale = figure_by_number(args.number)
    scale = args.scale if args.scale is not None else default_scale
    result = runner(
        scale=scale, seed=args.seed, parallel=_parallel_from_args(args),
        shards=getattr(args, "shards", 1),
    )
    from repro.experiments.report import utility_chart

    print(full_report(result))
    print()
    print(utility_chart(result))
    if args.csv:
        from repro.experiments.io import write_csv

        write_csv(result, args.csv)
        print(f"\nwrote {args.csv}")
    if args.json:
        from repro.experiments.io import write_json

        write_json(result, args.json)
        print(f"wrote {args.json}")
    return 0


def _cmd_ratio(args: argparse.Namespace) -> int:
    from repro.experiments.ratios import (
        measure_online_ratio,
        measure_recon_ratio,
    )

    print(measure_recon_ratio(n_instances=args.instances, seed=args.seed))
    print(
        measure_online_ratio(
            n_instances=args.instances, seed=args.seed, g=args.g
        )
    )
    print(f"(Corollary IV.1 factor ln(g)+1 = {math.log(args.g) + 1:.2f})")
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.algorithms.calibration import calibrate_from_problem
    from repro.datagen.config import ParameterRange, WorkloadConfig
    from repro.datagen.synthetic import synthetic_problem

    problem = synthetic_problem(
        WorkloadConfig(
            n_customers=args.customers,
            n_vendors=args.vendors,
            radius_range=ParameterRange(0.03, 0.06),
            seed=args.seed,
        )
    )
    bounds = calibrate_from_problem(problem, seed=args.seed)
    print(f"gamma_min = {bounds.gamma_min:.6f}")
    print(f"gamma_max = {bounds.gamma_max:.6f}")
    print(f"g         = {bounds.g:.2f}")
    print(f"ln(g)+1   = {math.log(bounds.g) + 1:.2f} "
          "(competitive bound factor, divide theta by it)")
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    from repro.algorithms.bounds import (
        capacity_bound,
        combined_bound,
        vendor_lp_bound,
    )
    from repro.datagen.config import ParameterRange, WorkloadConfig
    from repro.datagen.synthetic import synthetic_problem
    from repro.experiments.runner import run_panel

    problem = synthetic_problem(
        WorkloadConfig(
            n_customers=args.customers,
            n_vendors=args.vendors,
            radius_range=ParameterRange(0.03, 0.06),
            seed=args.seed,
        )
    )
    vendor_side = vendor_lp_bound(problem)
    customer_side = capacity_bound(problem)
    bound = combined_bound(problem)
    print(f"vendor-LP bound   (budgets tight):    {vendor_side:12.3f}")
    print(f"capacity bound    (capacities tight): {customer_side:12.3f}")
    print(f"combined bound:                       {bound:12.3f}")
    results = run_panel(
        problem, algorithms=("GREEDY", "RECON", "ONLINE"), seed=args.seed
    )
    print("\ncertified fractions of the optimum:")
    for name, result in results.items():
        print(f"  {name:8s} >= {result.total_utility / bound:6.1%} "
              f"(utility {result.total_utility:.3f})")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.datagen.config import ParameterRange, WorkloadConfig
    from repro.datagen.stats import instance_card

    if args.checkins:
        from repro.datagen.checkins import (
            problem_from_checkins,
            simulate_checkins,
        )

        feed = simulate_checkins(
            n_users=max(50, args.customers // 10),
            n_venues=max(100, args.vendors * 3),
            n_checkins=max(2_000, args.customers * 4),
            seed=args.seed,
        )
        problem = problem_from_checkins(
            feed,
            max_customers=args.customers,
            max_vendors=args.vendors,
            seed=args.seed,
        )
    else:
        from repro.datagen.synthetic import synthetic_problem

        problem = synthetic_problem(
            WorkloadConfig(
                n_customers=args.customers,
                n_vendors=args.vendors,
                radius_range=ParameterRange(0.03, 0.06),
                seed=args.seed,
            )
        )
    print(instance_card(problem))
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments.paper import ALL_FIGURES, reproduce_all

    with _artifact_cache_from_args(args) as cache:
        report = reproduce_all(
            scale_multiplier=args.scale_multiplier,
            seed=args.seed,
            figures=tuple(args.figures) if args.figures else ALL_FIGURES,
            output_dir=args.out,
            progress=print,
            parallel=_parallel_from_args(args),
            shards=getattr(args, "shards", 1),
        )
    _report_cache(cache)
    print()
    print(report.summary())
    if report.output_dir is not None:
        print(f"\ntables written to {report.output_dir}/")
    return 0 if report.all_passed else 1


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs.summary import spans_from_chrome_trace, summary_table

    spans = spans_from_chrome_trace(args.trace_file)
    if not spans:
        print(f"no spans recorded in {args.trace_file}")
        return 1
    print(summary_table(spans))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.algorithms.calibration import calibrate_from_problem
    from repro.algorithms.online_afa import OnlineAdaptiveFactorAware
    from repro.datagen.config import ParameterRange, WorkloadConfig
    from repro.datagen.synthetic import synthetic_problem
    from repro.serve import (
        ReplayDriver,
        ServeConfig,
        build_schedule,
        utility_estimator,
    )

    problem = synthetic_problem(
        WorkloadConfig(
            n_customers=args.customers,
            n_vendors=args.vendors,
            radius_range=ParameterRange(0.03, 0.06),
            seed=args.seed,
        )
    )
    bounds = calibrate_from_problem(problem, seed=args.seed)
    algorithm = OnlineAdaptiveFactorAware(
        gamma_min=bounds.gamma_min, g=bounds.g
    )
    plan = None
    sharded = None
    if args.shards > 1:
        from repro.engine.sharded import ShardedEngine
        from repro.sharding import ShardPlan

        plan = ShardPlan.build(problem, args.shards)
        sharded = ShardedEngine.create(plan)
        if args.artifact is not None:
            if sharded is None:
                print("this workload's utility model has no vectorized "
                      "engine; --artifact needs one")
                return 2
            sharded.attach_store(args.artifact)
            print(f"artifact store: {args.artifact} (only routed shards "
                  f"demand-page their engine)")
    config = ServeConfig(
        max_batch=args.max_batch,
        max_wait=args.max_wait_ms / 1000.0,
        queue_depth=args.queue_depth,
        rate=args.rate_limit,
        burst=args.burst,
        deadline=(
            None if args.deadline_ms is None else args.deadline_ms / 1000.0
        ),
    )
    schedule = build_schedule(
        problem.customers, rate=args.rps,
        process=args.arrival, seed=args.seed,
    )
    if args.shards == 1:
        cache_ctx = _artifact_cache_from_args(args)
    else:
        from contextlib import nullcontext

        cache_ctx = nullcontext(None)
    with cache_ctx as cache:
        # The shed policy ranks by the engine-backed utility estimate
        # when the global engine is (or will be) resident; with a
        # sharded demand-paged store the cheap prior avoids building
        # the global table the store exists to replace.
        estimator = None if sharded is not None else utility_estimator(problem)
        if args.mode == "replay":
            driver = ReplayDriver(
                problem,
                algorithm,
                config,
                shard_plan=plan,
                sharded_engine=sharded,
                estimator=estimator,
            )
            result = driver.run(schedule)
        else:
            result = _serve_async(
                problem, algorithm, config, schedule,
                plan, sharded, estimator,
            )
    _report_cache(cache)
    card = result.card()
    width = max(len(key) for key in card)
    for key, value in card.items():
        if isinstance(value, float):
            print(f"{key:{width}s}  {value:.6g}")
        else:
            print(f"{key:{width}s}  {value}")
    if sharded is not None:
        paged = sorted(sharded.loads_by_shard)
        if paged:
            print(f"shards demand-paged from store: {paged}")
    return 0


def _serve_async(
    problem, algorithm, config, schedule, plan, sharded, estimator
):
    import asyncio
    import time

    from repro.serve import AdServer, ServeResult, run_open_loop
    from repro.serve.server import default_estimator

    async def episode():
        server = AdServer.create(
            problem,
            algorithm,
            max_batch=config.max_batch,
            max_wait=config.max_wait,
            queue_depth=config.queue_depth,
            rate=config.rate,
            burst=config.burst,
            shard_plan=plan,
            sharded_engine=sharded,
            estimator=(
                estimator if estimator is not None else default_estimator
            ),
            warm=config.warm,
        )
        start = time.perf_counter()
        async with server:
            await run_open_loop(server, schedule, deadline=config.deadline)
        return server.stats, time.perf_counter() - start

    stats, duration = asyncio.run(episode())
    offered = 0.0
    if schedule and schedule[-1].time > 0:
        offered = len(schedule) / schedule[-1].time
    return ServeResult(
        stats=stats, duration=duration, offered_rps=offered
    )


def _cmd_serve_cluster(args: argparse.Namespace) -> int:
    import multiprocessing

    from repro.cluster import ChaosEvent, ChaosPlan, ClusterConfig, run_episode
    from repro.datagen.config import ParameterRange, WorkloadConfig
    from repro.datagen.synthetic import synthetic_problem

    transport = args.transport
    if (
        transport == "process"
        and "fork" not in multiprocessing.get_all_start_methods()
    ):
        print("fork start method unavailable; using the inline transport")
        transport = "inline"
    problem = synthetic_problem(
        WorkloadConfig(
            n_customers=args.customers,
            n_vendors=args.vendors,
            seed=args.seed,
            radius_range=ParameterRange(0.15, 0.25),
        )
    )
    chaos = None
    if args.kill_shard is not None:
        if not 0 <= args.kill_shard < args.shards:
            print(
                f"--kill-shard must be in [0, {args.shards}), "
                f"got {args.kill_shard}"
            )
            return 2
        tick = (
            args.customers // 2 if args.kill_tick is None else args.kill_tick
        )
        chaos = ChaosPlan(
            seed=args.seed,
            events=(
                ChaosEvent(tick=tick, kind="kill", shard=args.kill_shard),
            ),
        )
        print(
            f"chaos: killing shard {args.kill_shard} at tick {tick}"
        )
    plan = None
    churn = None
    if args.churn > 0:
        from repro.churn import seeded_vendor_churn
        from repro.sharding import ShardPlan

        plan = ShardPlan.build(problem, args.shards)
        churn_seed = (
            args.seed if args.churn_seed is None else args.churn_seed
        )
        churn = seeded_vendor_churn(
            problem,
            args.churn,
            seed=churn_seed,
            n_ticks=args.customers,
            plan=plan,
        )
        print(
            f"churn: {len(churn)} seeded event(s), seed {churn_seed}"
        )
    if args.artifact is not None:
        print(f"artifact store: {args.artifact} (shards with a saved "
              f"shard-NNNN.cols boot from it)")
    result = run_episode(
        problem,
        ClusterConfig(
            shards=args.shards,
            transport=transport,
            artifact_dir=args.artifact,
        ),
        chaos=chaos,
        shard_plan=plan,
        churn=churn,
    )
    print(result.card())
    return 0


def _cmd_build_artifact(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.datagen.config import ParameterRange, WorkloadConfig
    from repro.datagen.synthetic import synthetic_problem
    from repro.store import EngineCache, save_sharded

    problem = synthetic_problem(
        WorkloadConfig(
            n_customers=args.customers,
            n_vendors=args.vendors,
            radius_range=ParameterRange(*args.radius),
            seed=args.seed,
        ),
        dtype=args.dtype,
    )
    out = Path(args.out)
    if args.shards > 1:
        from repro.sharding import ShardPlan

        plan = ShardPlan.build(problem, args.shards)
        paths = save_sharded(plan, out, prune=args.prune)
        for path in paths:
            print(f"wrote {path}")
        if args.prune is not None:
            print(f"each shard pruned at level={args.prune} "
                  f"(certificates saved in the artifacts)")
        print(f"{args.shards} shard artifact(s) + plan.json in {out}/ "
              f"(consume with: repro serve-cluster --artifact {out})")
        return 0
    engine = problem.acquire_engine()
    if engine is None:
        print("this workload's utility model has no vectorized engine")
        return 2
    engine.num_edges
    engine.pair_bases
    if args.prune is not None:
        certificate = engine.prune(args.prune)
        print(f"pruned {certificate.edges_dropped} of "
              f"{certificate.edges_before} edges "
              f"({certificate.prune_ratio:.1%}, level={args.prune})")
    path = EngineCache(out).store(problem, engine)
    print(f"wrote {path} ({path.stat().st_size} bytes, "
          f"{engine.num_edges} edges, dtype {args.dtype})")
    print(f"consume with: repro demo --artifact {out} (matching "
          f"--customers/--vendors/--seed/--dtype)")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    import multiprocessing
    import platform

    import numpy

    import repro
    from repro.mckp.solvers import _BACKENDS, SOLVER_NAMES
    from repro.parallel.shm import HAVE_SHARED_MEMORY

    start_methods = multiprocessing.get_all_start_methods()
    backends = ", ".join(
        name for name in SOLVER_NAMES if callable(_BACKENDS.get(name))
    )
    print(f"repro version:  {repro.__version__}")
    print(f"python:         {platform.python_version()}")
    print(f"numpy:          {numpy.__version__}")
    print(f"platform:       {platform.platform()}")
    print(f"cpu count:      {multiprocessing.cpu_count()}")
    print(f"start methods:  {multiprocessing.get_start_method()} (default); "
          f"available: {', '.join(start_methods)}")
    print(f"shared memory:  {'yes' if HAVE_SHARED_MEMORY else 'no'}")
    print(f"mckp backends:  {backends}")
    print("lp backend:     in-tree simplex (repro.lp.model.LinearProgram)")

    # Shard card of a small sample instance: what --shards would do.
    from repro.datagen.config import ParameterRange, WorkloadConfig
    from repro.datagen.synthetic import synthetic_problem
    from repro.sharding import ShardPlan

    problem = synthetic_problem(
        WorkloadConfig(
            n_customers=args.customers,
            n_vendors=args.vendors,
            radius_range=ParameterRange(0.03, 0.06),
            seed=args.seed,
        )
    )
    plan = ShardPlan.build(problem, shards=args.shards)
    print()
    print(f"shard card ({args.customers} customers x {args.vendors} "
          f"vendors, seed {args.seed}, --shards {args.shards}):")
    for line in plan.card().splitlines():
        print(f"  {line}")

    # Cluster card: what serve-cluster would run on this machine.
    from repro.cluster.episode import TRANSPORTS

    fork_ok = "fork" in start_methods
    default_transport = "process" if fork_ok else "inline"
    print()
    print("cluster card (repro serve-cluster):")
    print(f"  transports:     {', '.join(TRANSPORTS)} "
          f"(default: {default_transport})")
    print(f"  workers:        one process per shard "
          f"({plan.n_shards} at --shards {args.shards})")
    print(f"  engine columns: {'shared memory' if HAVE_SHARED_MEMORY else 'per-worker local scoring'}")
    print("  resilience:     per-shard breakers, heartbeats, "
          "restart-with-replay, replica/static/nearest/shed ladder")

    # Churn card: live marketplace churn on the sample plan.
    from repro.churn import EVENT_KINDS, seeded_vendor_churn

    sample = seeded_vendor_churn(
        problem, 8, seed=args.seed, n_ticks=args.customers, plan=plan
    )
    kinds: dict = {}
    for event in sample.events:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
    mix = ", ".join(f"{kind}={kinds[kind]}" for kind in sorted(kinds))
    print()
    print("churn card (serve-cluster --churn N):")
    print(f"  event kinds:    {', '.join(EVENT_KINDS)}")
    print(f"  plan epoch:     {plan.epoch} "
          f"(schema v2 metadata round-trips the epoch)")
    print(f"  sample of 8:    {mix} (seed {args.seed})")
    print("  delta path:     engine segments spliced in place; "
          "cold rebuild kept as the parity reference")

    # Serving card: the async front-end (docs/serving.md).
    from repro.serve import ServeConfig
    from repro.serve.loadgen import PROCESSES
    from repro.serve.request import STATUSES

    defaults = ServeConfig()
    print()
    print("serving card (repro serve, docs/serving.md):")
    print(f"  micro-batching: flush at max_batch={defaults.max_batch} "
          f"or max_wait={defaults.max_wait * 1000:.0f}ms; one engine "
          f"kernel call per routed shard")
    print(f"  admission:      bounded queue (depth "
          f"{defaults.queue_depth}, sheds lowest expected utility "
          f"first) + optional token bucket + per-request deadlines")
    print(f"  arrivals:       {', '.join(PROCESSES)} (seeded, open-loop)")
    print(f"  statuses:       {', '.join(STATUSES)}")
    print("  parity:         batch decisions identical to the "
          "sequential online stream over the same arrival order")

    # Scale card: dtype policies and the artifact store (docs/scale.md).
    from repro.engine import FLOAT32, FLOAT64
    from repro.store import ENGINE_SCHEMA_VERSION, FORMAT_VERSION, MAGIC

    print()
    print("scale card (docs/scale.md):")
    print(f"  dtype policies: {FLOAT64.name} (reference, bitwise parity) "
          f"| {FLOAT32.name} (compact, utility rtol "
          f"{FLOAT32.utility_rtol:.0e}, half the edge-table bytes)")
    print(f"  artifact store: {MAGIC.decode()} container v{FORMAT_VERSION}, "
          f"engine schema v{ENGINE_SCHEMA_VERSION}, mmap-able "
          f"(repro build-artifact / --artifact)")
    print("  edge pruning:   exact (certified utility-neutral) | lp "
          "(bound-preserving); certificates travel with artifacts")

    # Scenario card: pluggable workloads (docs/scenarios.md).
    from repro.scenario import DEFAULT_SCENARIO, SCENARIOS

    print()
    print("scenario card (repro demo --scenario, docs/scenarios.md):")
    for name in sorted(SCENARIOS):
        marker = " (default)" if name == DEFAULT_SCENARIO else ""
        print(f"  {name + ':':22s}{SCENARIOS[name].description}{marker}")
    print("  parity:         single-slot-static is the identity -- "
          "every solver output is bitwise the pre-scenario result")
    return 0


_COMMANDS = {
    "demo": _cmd_demo,
    "figure": _cmd_figure,
    "ratio": _cmd_ratio,
    "calibrate": _cmd_calibrate,
    "bounds": _cmd_bounds,
    "stats": _cmd_stats,
    "reproduce": _cmd_reproduce,
    "obs": _cmd_obs,
    "serve": _cmd_serve,
    "serve-cluster": _cmd_serve_cluster,
    "build-artifact": _cmd_build_artifact,
    "info": _cmd_info,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    command = _COMMANDS[args.command]
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    if trace_path is None and metrics_path is None:
        return command(args)

    from repro.obs.recorder import observed

    with observed() as rec:
        code = command(args)
    if trace_path is not None:
        rec.write_trace(trace_path)
        print(f"wrote trace {trace_path}")
    if metrics_path is not None:
        rec.write_metrics(metrics_path)
        print(f"wrote metrics {metrics_path}")
    return code


if __name__ == "__main__":
    sys.exit(main())
