"""The cluster episode driver: boot, stream, recover, report.

:func:`run_episode` is the one entry point: it partitions the problem
with a :class:`~repro.sharding.ShardPlan`, calibrates the O-AFA
threshold once on the global instance (workers and the router's replica
tier share the exact parameters, so decisions are comparable across
paths), pre-scores each shard's engine and ships its columns over
shared memory, boots one worker per shard, and then drives the arrival
stream tick by tick: chaos events fire first, due restarts are tended
(with replay), heartbeats probe on their interval, and the customer is
routed and decided.

Under zero faults the produced assignment is *decision-identical* to
the in-process sharded :class:`~repro.stream.simulator.OnlineSimulator`
run with the same plan and threshold -- the parity gate in
``benchmarks/bench_cluster.py`` holds this to 1e-9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.calibration import calibrate_from_problem
from repro.cluster.chaos import ChaosController, ChaosPlan
from repro.cluster.control import ControlPlane
from repro.cluster.router import DEFAULT_LADDER, ClusterRouter, ClusterStats
from repro.cluster.transport import InlineShardHost, ProcessShardHost
from repro.cluster.worker import engine_columns
from repro.core.assignment import Assignment
from repro.core.entities import Customer
from repro.obs.recorder import recorder
from repro.parallel.shm import HAVE_SHARED_MEMORY, ship_columns
from repro.sharding import ShardPlan
from repro.stream.arrivals import by_arrival_time

#: Supported transports.
TRANSPORTS = ("inline", "process")


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs of one cluster episode.

    Attributes:
        shards: Shard count when no explicit plan is supplied.
        transport: ``"process"`` forks one worker per shard;
            ``"inline"`` runs the identical servers in-process
            (deterministic -- what tests and gates use).
        use_shm: Ship pre-scored engine columns through shared memory.
            Default: on for the process transport when the platform has
            shared memory, off inline (workers then score locally).
        heartbeat_interval: Control-plane probe period in ticks.
        suspect_after: Consecutive heartbeat misses before SUSPECT.
        down_after: Misses before DOWN (schedules a restart).
        restart_delay: Ticks from DOWN to the restart attempt.
        max_restarts: Restart attempts before giving a shard up.
        breaker_recovery: Breaker open -> half-open cool-down (ticks).
        retry_attempts: Router retries after a corrupted reply.
        ladder: Degradation tiers, best first.
        calibration_seed: Seed for threshold calibration sampling.
        sample_customers: Calibration sample size.
        request_timeout: Per-request reply deadline (process transport).
        artifact_dir: Optional :mod:`repro.store` directory
          (``plan.json`` + ``shard-NNNN.cols``).  Shards whose artifact
          file exists boot from it (mapped read-only) instead of
          scoring locally or shipping shm columns.
    """

    shards: int = 4
    transport: str = "inline"
    use_shm: Optional[bool] = None
    heartbeat_interval: int = 8
    suspect_after: int = 1
    down_after: int = 2
    restart_delay: int = 2
    max_restarts: int = 3
    breaker_recovery: float = 4.0
    retry_attempts: int = 2
    ladder: Tuple[str, ...] = DEFAULT_LADDER
    calibration_seed: int = 0
    sample_customers: Optional[int] = 500
    request_timeout: float = 30.0
    artifact_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"transport must be one of {TRANSPORTS}, "
                f"got {self.transport!r}"
            )
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")

    def resolved_use_shm(self) -> bool:
        if self.use_shm is not None:
            return self.use_shm and HAVE_SHARED_MEMORY
        return self.transport == "process" and HAVE_SHARED_MEMORY


@dataclass
class ClusterResult:
    """Outcome of one cluster episode."""

    assignment: Assignment
    stats: ClusterStats
    n_shards: int
    transport: str
    gamma_min: float
    g: float

    @property
    def total_utility(self) -> float:
        return self.assignment.total_utility

    @property
    def p99_decision_seconds(self) -> float:
        """p99 of the full per-arrival router path (RPC included)."""
        latencies = self.stats.router_latencies
        if not latencies:
            return 0.0
        return float(np.quantile(np.array(latencies), 0.99))

    def card(self) -> str:
        """A printable episode summary."""
        stats = self.stats
        paths = ", ".join(
            f"{path}={stats.decisions_by_path[path]}"
            for path in sorted(stats.decisions_by_path)
        )
        health = ", ".join(
            f"{shard}:{state}"
            for shard, state in sorted(stats.shard_health.items())
        )
        lines = [
            f"cluster: {self.n_shards} shard(s), "
            f"{self.transport} transport",
            f"decisions: {stats.decisions} ({paths})",
            f"utility: {self.total_utility:.4f} over "
            f"{len(self.assignment)} instances",
            f"faults: {sum(stats.faults_injected.values())} injected, "
            f"{stats.corrupt_replies} corrupted replies, "
            f"{stats.retries} retries",
            f"recovery: {stats.restarts} restart(s), "
            f"{stats.replayed_instances} instances replayed, "
            f"{stats.heartbeats_missed}/{stats.heartbeats} "
            f"heartbeats missed",
            f"breakers: {stats.breaker_opens} open transition(s)",
            f"health: {health}",
            f"router p99: {self.p99_decision_seconds * 1e3:.3f}ms",
        ]
        if stats.churn_events or stats.churn_epoch:
            lines.insert(
                5,
                f"churn: {stats.churn_events} event(s), "
                f"epoch {stats.churn_epoch}",
            )
        return "\n".join(lines)


def run_episode(
    problem,
    config: Optional[ClusterConfig] = None,
    chaos: Optional[ChaosPlan] = None,
    arrivals: Optional[Sequence[Customer]] = None,
    shard_plan: Optional[ShardPlan] = None,
    churn=None,
) -> ClusterResult:
    """Serve one arrival stream through the process-per-shard cluster.

    Args:
        problem: The MUAA instance.
        config: Episode knobs (defaults: 4 shards, inline transport).
        chaos: Optional seeded fault plan; ``None`` runs fault-free.
        arrivals: Arrival order (arrival-time order by default).
        shard_plan: Pre-built plan to reuse (wins over
            ``config.shards``).
        churn: Optional :class:`~repro.churn.ChurnSchedule`.  Events at
            arrival index ``t`` are applied through the plan and their
            per-shard deltas shipped to the workers *before* customer
            ``t`` is decided; the final epoch lands in the episode
            stats.
    """
    config = config or ClusterConfig()
    plan = shard_plan or ShardPlan.build(problem, config.shards)
    rec = recorder()
    bounds = calibrate_from_problem(
        problem,
        sample_customers=config.sample_customers,
        seed=config.calibration_seed,
    )
    gamma_min, g = bounds.gamma_min, bounds.g
    use_shm = config.resolved_use_shm()
    host_cls = (
        ProcessShardHost
        if config.transport == "process"
        else InlineShardHost
    )
    hosts: Dict[int, object] = {}
    shipments = []
    with rec.span(
        "cluster.boot",
        shards=plan.n_shards,
        transport=config.transport,
        shm=use_shm,
    ):
        for shard in range(plan.n_shards):
            view = plan.problem_for(shard)
            handle = None
            artifact_path = None
            if config.artifact_dir is not None:
                from repro.store import shard_artifact_name

                candidate = (
                    Path(config.artifact_dir) / shard_artifact_name(shard)
                )
                if candidate.exists():
                    artifact_path = str(candidate)
            if use_shm and artifact_path is None:
                engine = view.acquire_engine()
                if engine is not None:
                    engine.warm()
                    shipment = ship_columns(engine_columns(engine))
                    shipments.append(shipment)
                    handle = shipment.handle
            kwargs = {"obs": rec.enabled}
            if config.transport == "process":
                kwargs["timeout"] = config.request_timeout
            hosts[shard] = host_cls(
                shard,
                view,
                handle,
                gamma_min,
                g,
                artifact_path=artifact_path,
                **kwargs,
            )
    control = ControlPlane(
        hosts,
        heartbeat_interval=config.heartbeat_interval,
        suspect_after=config.suspect_after,
        down_after=config.down_after,
        restart_delay=config.restart_delay,
        max_restarts=config.max_restarts,
        breaker_recovery=config.breaker_recovery,
        epoch_of=lambda: plan.epoch,
    )
    chaosctl = ChaosController(chaos or ChaosPlan.none())
    router = ClusterRouter(
        problem,
        plan,
        hosts,
        control,
        chaosctl,
        gamma_min,
        g,
        retry_attempts=config.retry_attempts,
        ladder=config.ladder,
    )
    if arrivals is None:
        arrivals = by_arrival_time(problem.customers)
    try:
        for tick, customer in enumerate(arrivals):
            control.begin_tick(tick)
            for event in chaosctl.activate(tick):
                hosts[event.shard].kill()
                chaosctl.note("kill")
                rec.event(
                    "cluster.chaos_kill", shard=event.shard, tick=tick
                )
            control.tend(tick, chaosctl, router.replay)
            if control.heartbeat_due(tick):
                control.heartbeat_round(tick, chaosctl)
            if churn is not None:
                for event in churn.at(tick):
                    router.apply_churn(event, tick)
            router.decide(customer, tick)
    finally:
        for host in hosts.values():
            host.close()
        for shipment in shipments:
            shipment.close()
    stats = router.finalize()
    return ClusterResult(
        assignment=router.assignment,
        stats=stats,
        n_shards=plan.n_shards,
        transport=config.transport,
        gamma_min=gamma_min,
        g=g,
    )
