"""Wire protocol between the cluster router and shard workers.

Every message crossing a shard boundary -- in either direction, over
either transport -- travels inside an :class:`Envelope`: the pickled
payload plus a CRC-32 of those exact bytes.  :func:`unseal` verifies
the checksum before unpickling, so a corrupted reply surfaces as a
:class:`CorruptMessageError` (a :class:`~repro.exceptions.TransientError`)
instead of silently decoding into garbage decisions.  Because workers
keep an idempotent per-customer decision cache, the router can simply
retry a corrupted exchange and receive the same decision again.

The message types are deliberately small, frozen dataclasses: ticks are
logical arrival indices (the cluster's only notion of time shared with
chaos plans), and replies optionally carry a drained
:class:`~repro.obs.recorder.RecorderSnapshot` so every worker's spans
land on the router's merged timeline.
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.churn import ShardDelta
from repro.core.assignment import AdInstance
from repro.core.entities import Customer
from repro.exceptions import TransientError


class CorruptMessageError(TransientError):
    """An envelope failed its checksum; the exchange should be retried."""


@dataclass(frozen=True)
class Envelope:
    """A checksummed, pickled message.

    Attributes:
        payload: ``pickle.dumps`` of the message object.
        crc: CRC-32 of ``payload`` computed at seal time.
    """

    payload: bytes
    crc: int


def seal(message: object) -> Envelope:
    """Pickle a message and stamp its checksum."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    return Envelope(payload=payload, crc=zlib.crc32(payload))


def unseal(envelope: Envelope) -> object:
    """Verify an envelope's checksum and unpickle its message.

    Raises:
        CorruptMessageError: If the payload does not match the stamped
            checksum (bit-rot, a chaos fault, a torn write).
    """
    if zlib.crc32(envelope.payload) != envelope.crc:
        raise CorruptMessageError(
            f"envelope checksum mismatch "
            f"(expected {envelope.crc:#010x}, "
            f"got {zlib.crc32(envelope.payload):#010x})"
        )
    return pickle.loads(envelope.payload)


def corrupt(envelope: Envelope, position: int = 0) -> Envelope:
    """Flip one payload byte, keeping the stale checksum (fault model).

    Used by chaos plans to model an in-flight bit flip; ``unseal`` on
    the result raises :class:`CorruptMessageError`.
    """
    payload = bytearray(envelope.payload)
    if payload:
        index = position % len(payload)
        payload[index] ^= 0xFF
    return Envelope(payload=bytes(payload), crc=envelope.crc)


@dataclass(frozen=True)
class DecideRequest:
    """Route one arriving customer to its shard for a decision."""

    tick: int
    customer: Customer


@dataclass(frozen=True)
class DecideReply:
    """A shard's decision for one customer.

    Attributes:
        tick: Echo of the request tick.
        shard: The deciding shard id.
        instances: The picked instances, in commit order (the router
            applies them to the global assignment in this order).
        cached: True when served from the idempotent decision cache
            (a retried exchange), so duplicates are observable.
        obs: Drained worker spans/metrics since the last reply, or
            ``None`` when the worker records nothing.
    """

    tick: int
    shard: int
    instances: Tuple[AdInstance, ...]
    cached: bool = False
    obs: Optional[object] = field(default=None, repr=False)


@dataclass(frozen=True)
class ChurnRequest:
    """Bring a shard worker to a new churn epoch.

    Carries one :class:`~repro.churn.ShardDelta` -- the per-shard
    payload of a vendor join/leave/exhaust or cell migration the plan
    already applied on the router side.  Workers apply deltas
    idempotently (guarded by the epoch), so re-sending one after a
    retried exchange or across a restart is harmless.
    """

    tick: int
    delta: ShardDelta


@dataclass(frozen=True)
class ChurnReply:
    """A worker's acknowledgement of one churn delta.

    Attributes:
        shard: The acknowledging shard id.
        epoch: The worker's churn epoch after handling the request.
        applied: False when the delta was skipped as already applied
            (inline transport shares the spliced view; a replayed
            delta after a restart finds the epoch already current).
    """

    shard: int
    epoch: int
    applied: bool


@dataclass(frozen=True)
class HeartbeatRequest:
    """Control-plane liveness probe."""

    tick: int


@dataclass(frozen=True)
class HeartbeatReply:
    """A worker's liveness answer with its commit counters."""

    tick: int
    shard: int
    decided: int
    committed: int
    epoch: int = 0


@dataclass(frozen=True)
class ReplayRequest:
    """State restoration after a worker restart.

    Attributes:
        instances: Every globally-committed instance owned by the
            shard's vendors (including ones committed by degraded-path
            decisions while the worker was down) -- re-seeds the
            worker-local budget bookkeeping.
        decided: ``(customer_id, picked_instances)`` pairs for customers
            this shard already decided -- re-seeds the idempotent
            decision cache so retried exchanges stay duplicate-free
            across a restart.
    """

    instances: Tuple[AdInstance, ...] = ()
    decided: Tuple[Tuple[int, Tuple[AdInstance, ...]], ...] = ()


@dataclass(frozen=True)
class ReplayReply:
    """Acknowledgement of a replay with restoration counters."""

    shard: int
    replayed_instances: int
    replayed_decisions: int


@dataclass(frozen=True)
class ShutdownRequest:
    """Ask a worker to exit its serving loop cleanly."""


@dataclass(frozen=True)
class ShutdownReply:
    """A worker's final acknowledgement before exiting."""

    shard: int
