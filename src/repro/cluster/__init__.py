"""Process-per-shard serving cluster for the online broker.

One worker per :class:`~repro.sharding.ShardPlan` shard holds that
shard's compute engine over shared memory and decides every customer
routed to it with the literal O-AFA hot path; a router forwards
arrivals, merges decisions into the one authoritative assignment, and
a control plane (heartbeats, per-shard circuit breakers,
restart-with-replay, crash-loop give-up) keeps the episode serving
through seeded chaos: shard kills, corrupted replies, delayed
heartbeats and crash loops all degrade gracefully down a
replica -> static-threshold -> nearest-vendor -> shed ladder instead
of raising.

See ``docs/cluster.md`` for the architecture, the failure modes and
the chaos-plan format; ``benchmarks/bench_cluster.py`` holds the
utility-retention and decision-parity gates.
"""

from repro.cluster.chaos import ChaosController, ChaosEvent, ChaosPlan
from repro.cluster.control import ControlPlane, ShardHealth, ShardState
from repro.cluster.episode import (
    ClusterConfig,
    ClusterResult,
    run_episode,
)
from repro.cluster.protocol import (
    CorruptMessageError,
    DecideReply,
    DecideRequest,
    Envelope,
    HeartbeatReply,
    HeartbeatRequest,
    ReplayReply,
    ReplayRequest,
    ShutdownReply,
    ShutdownRequest,
    corrupt,
    seal,
    unseal,
)
from repro.cluster.router import ClusterRouter, ClusterStats, DEFAULT_LADDER
from repro.cluster.transport import InlineShardHost, ProcessShardHost
from repro.cluster.worker import ShardServer, engine_columns, worker_main

__all__ = [
    "ChaosController",
    "ChaosEvent",
    "ChaosPlan",
    "ClusterConfig",
    "ClusterResult",
    "ClusterRouter",
    "ClusterStats",
    "ControlPlane",
    "CorruptMessageError",
    "DecideReply",
    "DecideRequest",
    "DEFAULT_LADDER",
    "Envelope",
    "HeartbeatReply",
    "HeartbeatRequest",
    "InlineShardHost",
    "ProcessShardHost",
    "ReplayReply",
    "ReplayRequest",
    "ShardHealth",
    "ShardServer",
    "ShardState",
    "ShutdownReply",
    "ShutdownRequest",
    "corrupt",
    "engine_columns",
    "run_episode",
    "seal",
    "unseal",
    "worker_main",
]
