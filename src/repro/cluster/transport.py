"""Shard hosts: the router's handle on one worker, over two transports.

Both hosts share one contract: :meth:`request` takes a protocol message,
moves it through a sealed :class:`~repro.cluster.protocol.Envelope`
round-trip, and returns the *reply envelope* (the router unseals it, so
chaos corruption can be applied uniformly at the boundary).  ``kill``
models abrupt shard loss, ``restart`` brings a fresh worker up with
empty state (the control plane replays committed budgets afterwards).

* :class:`ProcessShardHost` forks a real child process per shard
  (pipe RPC, SIGKILL on ``kill``); the worker re-assembles its engine
  from the shared-memory columns, so a restart re-attaches to the same
  block -- the parent keeps the shipment alive for the episode.
* :class:`InlineShardHost` runs the identical
  :class:`~repro.cluster.worker.ShardServer` in-process with the same
  envelope round-trip.  It is deterministic and fork-free, which is
  what chaos tests and the parity gate run on; ``kill`` flips a dead
  flag and drops the server (state loss included).
"""

from __future__ import annotations

import multiprocessing
from typing import Optional

from repro.cluster.protocol import (
    Envelope,
    ShutdownRequest,
    seal,
    unseal,
)
from repro.cluster.worker import ShardServer, worker_main
from repro.exceptions import DeadlineExceededError, ShardUnavailableError
from repro.parallel.shm import ColumnHandle


class InlineShardHost:
    """An in-process shard host (deterministic transport).

    Args:
        shard_id: The shard index.
        problem: The shard's problem view.
        handle: Optional shm handle for engine reconstruction; ``None``
            scores locally.
        gamma_min: Calibrated threshold parameters (see
            :class:`~repro.cluster.worker.ShardServer`).
        g: Threshold growth constant.
        obs: Ship worker span snapshots in replies.
        artifact_path: Optional engine artifact to boot from (wins
            over ``handle``; see :mod:`repro.store`).
    """

    transport = "inline"

    def __init__(
        self,
        shard_id: int,
        problem,
        handle: Optional[ColumnHandle],
        gamma_min: float,
        g: float,
        obs: bool = False,
        artifact_path: Optional[str] = None,
    ) -> None:
        self.shard_id = shard_id
        self._problem = problem
        self._handle = handle
        self._gamma_min = gamma_min
        self._g = g
        self._obs = obs
        self._artifact_path = artifact_path
        self._server: Optional[ShardServer] = ShardServer(
            shard_id,
            problem,
            handle,
            gamma_min,
            g,
            obs=obs,
            artifact_path=artifact_path,
        )

    @property
    def alive(self) -> bool:
        return self._server is not None

    def request(self, message: object, timeout: float = 10.0) -> Envelope:
        """Serve one sealed exchange; returns the reply envelope."""
        if self._server is None:
            raise ShardUnavailableError(
                f"shard {self.shard_id} worker is down"
            )
        # The envelope round-trip is not decorative: requests and
        # replies cross the same checksum boundary as the process
        # transport, so corruption faults behave identically.
        request = unseal(seal(message))
        return seal(self._server.handle(request))

    def invalidate_handle(self) -> None:
        """Forget the pre-scored shm columns (stale after churn).

        A later :meth:`restart` then scores locally against the
        current -- post-churn -- problem view instead of attaching
        columns frozen at boot time.  The live server is unaffected:
        it splices its own engine as churn deltas arrive.
        """
        self._handle = None
        # On-disk artifacts are frozen at their save epoch too.
        self._artifact_path = None

    def kill(self) -> None:
        """Abrupt loss: the server and all its local state are dropped."""
        if self._server is not None:
            self._server.close()
            self._server = None

    def restart(self) -> None:
        """Bring up a fresh worker with empty state (replay follows)."""
        self.kill()
        self._server = ShardServer(
            self.shard_id,
            self._problem,
            self._handle,
            self._gamma_min,
            self._g,
            obs=self._obs,
            artifact_path=self._artifact_path,
        )

    def close(self) -> None:
        self.kill()


class ProcessShardHost:
    """A forked worker process per shard, spoken to over a pipe.

    The fork start method is required: the shard problem view rides
    fork inheritance (entity objects need no pickling) while the
    engine columns ride shared memory.  ``kill`` sends SIGKILL -- the
    worker gets no chance to flush or reply, exactly like a crashed
    container.

    Args:
        shard_id: The shard index.
        problem: The shard's problem view (fork-inherited).
        handle: Shm handle the worker attaches its engine to; the
            parent must keep the shipment open while workers run.
        gamma_min: Calibrated threshold parameters.
        g: Threshold growth constant.
        obs: Ship worker span snapshots in replies.
        timeout: Default per-request reply deadline in seconds.
        artifact_path: Optional engine artifact the worker boots from
            (mapped read-only in the child; wins over ``handle``).
    """

    transport = "process"

    def __init__(
        self,
        shard_id: int,
        problem,
        handle: Optional[ColumnHandle],
        gamma_min: float,
        g: float,
        obs: bool = False,
        timeout: float = 30.0,
        artifact_path: Optional[str] = None,
    ) -> None:
        self.shard_id = shard_id
        self._problem = problem
        self._handle = handle
        self._gamma_min = gamma_min
        self._g = g
        self._obs = obs
        self._timeout = timeout
        self._artifact_path = artifact_path
        self._ctx = multiprocessing.get_context("fork")
        self._proc = None
        self._conn = None
        self._start()

    def _start(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=worker_main,
            args=(
                child_conn,
                self.shard_id,
                self._problem,
                self._handle,
                self._gamma_min,
                self._g,
                self._obs,
                self._artifact_path,
            ),
            daemon=True,
            name=f"repro-shard-{self.shard_id}",
        )
        proc.start()
        child_conn.close()
        self._proc = proc
        self._conn = parent_conn

    @property
    def alive(self) -> bool:
        return self._proc is not None and self._proc.is_alive()

    def request(
        self, message: object, timeout: Optional[float] = None
    ) -> Envelope:
        """One pipe round-trip; returns the reply envelope.

        Raises:
            ShardUnavailableError: The worker is dead or the pipe broke.
            DeadlineExceededError: No reply within the timeout.
        """
        if not self.alive or self._conn is None:
            raise ShardUnavailableError(
                f"shard {self.shard_id} worker process is down"
            )
        deadline = self._timeout if timeout is None else timeout
        try:
            self._conn.send(seal(message))
            if not self._conn.poll(deadline):
                raise DeadlineExceededError(
                    f"shard {self.shard_id} reply exceeded {deadline:.1f}s"
                )
            return self._conn.recv()
        except (BrokenPipeError, ConnectionResetError, EOFError) as exc:
            raise ShardUnavailableError(
                f"shard {self.shard_id} transport failed: {exc!r}"
            ) from exc

    def invalidate_handle(self) -> None:
        """Forget the shm columns (stale after churn); a later restart
        forks a worker that scores locally against the post-churn view
        it inherits, instead of attaching boot-time columns."""
        self._handle = None
        self._artifact_path = None

    def kill(self) -> None:
        """SIGKILL the worker (abrupt loss, no cleanup on its side)."""
        if self._proc is not None:
            self._proc.kill()
            self._proc.join(timeout=5.0)
        self._drop_channel()

    def restart(self) -> None:
        """Fork a fresh worker; it re-attaches the same shm columns."""
        self.kill()
        self._start()

    def close(self) -> None:
        """Polite shutdown; falls back to kill on any trouble."""
        if self._proc is None:
            return
        if self.alive and self._conn is not None:
            try:
                self._conn.send(seal(ShutdownRequest()))
                if self._conn.poll(5.0):
                    self._conn.recv()
            except (BrokenPipeError, ConnectionResetError, EOFError, OSError):
                pass
        proc = self._proc
        proc.join(timeout=5.0)
        if proc.is_alive():  # pragma: no cover - stuck worker
            proc.kill()
            proc.join(timeout=5.0)
        self._drop_channel()

    def _drop_channel(self) -> None:
        if self._conn is not None:
            self._conn.close()
        self._conn = None
        self._proc = None
