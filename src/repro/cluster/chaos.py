"""Seeded, tick-keyed chaos plans for cluster episodes.

Chaos events are keyed to *logical ticks* (arrival indices), not wall
time, so a plan replays identically on any machine and under any
transport: "kill shard 2 at tick 150" means exactly that whether the
shard is a forked process or an in-process stand-in.  All randomness
(victim selection, corruption byte positions) derives from per-purpose
``random.Random(f"{seed}:{name}")`` streams, the same idiom as
:mod:`repro.resilience.faults`.

Supported event kinds:

* ``kill`` -- SIGKILL the shard's worker at the event tick (mid-stream
  shard loss; the control plane discovers it and restarts with replay).
* ``corrupt_reply`` -- flip a byte in the shard's next ``count``
  replies; each surfaces as a checksum failure and a router retry.
* ``delay_heartbeats`` -- suppress the shard's heartbeat replies for
  ``duration`` ticks (the control plane sees misses and turns suspect).
* ``crash_loop`` -- the shard's next ``count`` restarts die immediately
  after coming up, exercising the give-up path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: The event kinds a plan may schedule.
EVENT_KINDS = ("kill", "corrupt_reply", "delay_heartbeats", "crash_loop")


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault.

    Attributes:
        tick: Logical arrival index at which the event fires.
        kind: One of :data:`EVENT_KINDS`.
        shard: Target shard id.
        count: For ``corrupt_reply``/``crash_loop``: how many replies /
            restarts are affected.
        duration: For ``delay_heartbeats``: suppression window in ticks.
    """

    tick: int
    kind: str
    shard: int
    count: int = 1
    duration: int = 0

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown chaos kind {self.kind!r}; expected one of "
                f"{EVENT_KINDS}"
            )
        if self.tick < 0:
            raise ValueError(f"tick must be >= 0, got {self.tick}")


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded, fully deterministic schedule of faults.

    Attributes:
        seed: Master seed; per-purpose RNG streams derive from it.
        events: The scheduled events (any order; fired by tick).
    """

    seed: int = 0
    events: Tuple[ChaosEvent, ...] = ()

    @classmethod
    def none(cls, seed: int = 0) -> "ChaosPlan":
        """The empty plan (zero-fault runs share the code path)."""
        return cls(seed=seed)

    @classmethod
    def kill_one(
        cls, seed: int, n_shards: int, tick: int
    ) -> "ChaosPlan":
        """Kill one seeded-random shard mid-stream (the bench gate)."""
        victim = random.Random(f"{seed}:kill").randrange(n_shards)
        return cls(
            seed=seed,
            events=(ChaosEvent(tick=tick, kind="kill", shard=victim),),
        )

    def stream(self, name: str) -> random.Random:
        """A named, reproducible RNG stream derived from the seed."""
        return random.Random(f"{self.seed}:{name}")

    @property
    def total_events(self) -> int:
        return len(self.events)


class ChaosController:
    """Runtime state of a plan during one episode.

    The episode driver calls :meth:`activate` once per tick and acts on
    the returned ``kill`` events itself; corruption, heartbeat
    suppression and crash-loops are tracked here and consulted by the
    router/control plane at the relevant decision points.
    """

    def __init__(self, plan: ChaosPlan) -> None:
        self.plan = plan
        self._by_tick: Dict[int, List[ChaosEvent]] = {}
        for event in plan.events:
            self._by_tick.setdefault(event.tick, []).append(event)
        self._corrupt_pending: Dict[int, int] = {}
        self._suppressed_until: Dict[int, int] = {}
        self._crash_loops: Dict[int, int] = {}
        self._corrupt_rng = plan.stream("corrupt")
        #: Counters of faults actually injected, by kind.
        self.injected: Dict[str, int] = {}

    def activate(self, tick: int) -> List[ChaosEvent]:
        """Arm this tick's events; returns the ``kill`` events to apply.

        Non-kill events update internal state (corruption budget,
        heartbeat suppression windows, crash-loop counters) and are
        consumed later via the query methods.
        """
        kills: List[ChaosEvent] = []
        for event in self._by_tick.get(tick, ()):
            if event.kind == "kill":
                kills.append(event)
            elif event.kind == "corrupt_reply":
                self._corrupt_pending[event.shard] = (
                    self._corrupt_pending.get(event.shard, 0) + event.count
                )
            elif event.kind == "delay_heartbeats":
                self._suppressed_until[event.shard] = max(
                    self._suppressed_until.get(event.shard, -1),
                    tick + event.duration,
                )
            elif event.kind == "crash_loop":
                self._crash_loops[event.shard] = (
                    self._crash_loops.get(event.shard, 0) + event.count
                )
        return kills

    def note(self, kind: str) -> None:
        """Count one injected fault of ``kind``."""
        self.injected[kind] = self.injected.get(kind, 0) + 1

    def corrupt_position(self) -> int:
        """Seeded byte position for the next corruption."""
        return self._corrupt_rng.randrange(1 << 16)

    def should_corrupt(self, shard: int) -> bool:
        """Consume one pending reply corruption for ``shard``."""
        left = self._corrupt_pending.get(shard, 0)
        if left <= 0:
            return False
        self._corrupt_pending[shard] = left - 1
        self.note("corrupt_reply")
        return True

    def heartbeat_suppressed(self, shard: int, tick: int) -> bool:
        """Whether ``shard``'s heartbeat is being swallowed at ``tick``."""
        suppressed = tick <= self._suppressed_until.get(shard, -1)
        if suppressed:
            self.note("delay_heartbeats")
        return suppressed

    def consume_crash_loop(self, shard: int) -> bool:
        """Whether the restart that just completed should die again."""
        left = self._crash_loops.get(shard, 0)
        if left <= 0:
            return False
        self._crash_loops[shard] = left - 1
        self.note("crash_loop")
        return True

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())
