"""The cluster control plane: health, heartbeats, restarts, breakers.

Time here is the stream's logical tick (one tick per arrival), so every
health decision is reproducible: heartbeats fire every
``heartbeat_interval`` ticks, a shard that misses ``suspect_after``
consecutive probes turns SUSPECT and ``down_after`` misses mark it DOWN,
and restarts are scheduled ``restart_delay`` ticks out.  Each shard gets
its own :class:`~repro.resilience.policy.CircuitBreaker` running on the
same tick clock -- a dead shard trips its breaker on the first failed
call (``failure_threshold=1``: a SIGKILLed worker is not a flaky one),
and the breaker's open -> half-open -> closed recovery paces when the
router resumes sending real traffic after a restart.

Restarts *replay*: the control plane brings the worker up and then asks
the router (via a callback) to re-send every committed instance owned by
the shard's vendors plus the shard's decision cache, so budgets resume
exactly where the cluster left them.  A shard whose restarts keep dying
(a chaos ``crash_loop``, or replay itself failing) is given up on after
``max_restarts`` attempts and marked FAILED -- the degradation ladder
then owns its traffic for the rest of the episode.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.chaos import ChaosController
from repro.exceptions import ResilienceError
from repro.obs.recorder import recorder
from repro.resilience.policy import BreakerState, CircuitBreaker


class ShardHealth(enum.Enum):
    """Lifecycle states of one shard as seen by the control plane."""

    HEALTHY = "healthy"
    SUSPECT = "suspect"
    DOWN = "down"
    FAILED = "failed"


@dataclass
class ShardState:
    """Mutable per-shard health bookkeeping."""

    shard: int
    health: ShardHealth = ShardHealth.HEALTHY
    missed_heartbeats: int = 0
    restarts: int = 0
    down_since: Optional[int] = None


class ControlPlane:
    """Watches shard hosts and drives recovery.

    Args:
        hosts: shard id -> host (inline or process transport).
        heartbeat_interval: Probe every N ticks.
        suspect_after: Consecutive misses before SUSPECT.
        down_after: Consecutive misses before DOWN (and a restart).
        restart_delay: Ticks between detecting DOWN and restarting.
        max_restarts: Restart attempts before giving a shard up.
        breaker_recovery: Breaker open -> half-open cool-down, in ticks.
        epoch_of: Optional zero-argument callable returning the current
            churn epoch; stamped into restart/failure events so replay
            timelines are attributable to the marketplace state they
            ran against.
    """

    def __init__(
        self,
        hosts: Dict[int, object],
        heartbeat_interval: int = 8,
        suspect_after: int = 1,
        down_after: int = 2,
        restart_delay: int = 2,
        max_restarts: int = 3,
        breaker_recovery: float = 4.0,
        epoch_of: Optional[Callable[[], int]] = None,
    ) -> None:
        self._hosts = hosts
        self.heartbeat_interval = max(1, heartbeat_interval)
        self.suspect_after = suspect_after
        self.down_after = down_after
        self.restart_delay = restart_delay
        self.max_restarts = max_restarts
        self._tick = 0
        self.states: Dict[int, ShardState] = {
            shard: ShardState(shard=shard) for shard in hosts
        }
        self.breakers: Dict[int, CircuitBreaker] = {
            shard: CircuitBreaker(
                name=f"shard-{shard}",
                clock=self._clock,
                failure_threshold=1,
                recovery_timeout=breaker_recovery,
            )
            for shard in hosts
        }
        self._restart_due: Dict[int, int] = {}
        self._epoch_of = epoch_of
        self.heartbeats = 0
        self.heartbeats_missed = 0
        self.restarts_performed = 0
        self.replayed_instances = 0

    def _clock(self) -> float:
        return float(self._tick)

    def begin_tick(self, tick: int) -> None:
        self._tick = tick

    # -- router-facing signals --------------------------------------------

    def note_failure(self, shard: int, tick: int) -> None:
        """A request to ``shard`` failed; trip its breaker, mark it."""
        self.breakers[shard].record_failure()
        state = self.states[shard]
        if state.health in (ShardHealth.DOWN, ShardHealth.FAILED):
            return
        host = self._hosts[shard]
        if not host.alive:
            self._mark_down(state, tick)
        elif state.health is ShardHealth.HEALTHY:
            state.health = ShardHealth.SUSPECT

    def note_success(self, shard: int) -> None:
        """A request to ``shard`` succeeded; heal its bookkeeping."""
        self.breakers[shard].record_success()
        state = self.states[shard]
        if state.health is ShardHealth.SUSPECT:
            state.health = ShardHealth.HEALTHY
        state.missed_heartbeats = 0

    def serving(self, shard: int) -> bool:
        """Whether the router should even try this shard."""
        return self.states[shard].health is not ShardHealth.FAILED

    # -- heartbeats --------------------------------------------------------

    def heartbeat_due(self, tick: int) -> bool:
        return tick % self.heartbeat_interval == 0

    def heartbeat_round(self, tick: int, chaos: ChaosController) -> None:
        """Probe every serving shard; misses escalate health state."""
        from repro.cluster.protocol import HeartbeatRequest, unseal

        rec = recorder()
        for shard, host in self._hosts.items():
            state = self.states[shard]
            if state.health in (ShardHealth.DOWN, ShardHealth.FAILED):
                continue  # restart pending (or given up); don't probe
            self.heartbeats += 1
            if chaos.heartbeat_suppressed(shard, tick):
                self._heartbeat_miss(state, tick, rec, reason="suppressed")
                continue
            try:
                unseal(host.request(HeartbeatRequest(tick=tick)))
            except ResilienceError:
                self._heartbeat_miss(state, tick, rec, reason="unreachable")
                continue
            state.missed_heartbeats = 0
            if state.health is ShardHealth.SUSPECT:
                state.health = ShardHealth.HEALTHY

    def _heartbeat_miss(self, state, tick, rec, reason: str) -> None:
        state.missed_heartbeats += 1
        self.heartbeats_missed += 1
        rec.event(
            "cluster.heartbeat_miss",
            shard=state.shard,
            misses=state.missed_heartbeats,
            reason=reason,
        )
        if state.missed_heartbeats >= self.down_after:
            self._mark_down(state, tick)
        elif state.missed_heartbeats >= self.suspect_after:
            state.health = ShardHealth.SUSPECT

    # -- restarts ----------------------------------------------------------

    def _mark_down(self, state: ShardState, tick: int) -> None:
        state.health = ShardHealth.DOWN
        state.down_since = tick
        if state.restarts >= self.max_restarts:
            self._give_up(state)
            return
        self._restart_due.setdefault(
            state.shard, tick + self.restart_delay
        )

    def _epoch(self) -> int:
        return self._epoch_of() if self._epoch_of is not None else 0

    def _give_up(self, state: ShardState) -> None:
        state.health = ShardHealth.FAILED
        self._restart_due.pop(state.shard, None)
        recorder().event(
            "cluster.shard_failed", shard=state.shard, epoch=self._epoch()
        )

    def tend(
        self,
        tick: int,
        chaos: ChaosController,
        replay: Callable[[int], Optional[int]],
    ) -> None:
        """Perform due restarts: bring the worker up, replay, re-serve.

        Args:
            tick: Current logical tick.
            chaos: Consulted for crash-loop faults on each restart.
            replay: ``shard -> replayed instance count`` callback (the
                router re-sends committed state); ``None`` means the
                replay itself failed and the restart is treated as dead.
        """
        rec = recorder()
        for shard in sorted(self._restart_due):
            if tick < self._restart_due[shard]:
                continue
            del self._restart_due[shard]
            state = self.states[shard]
            state.restarts += 1
            rec.event(
                "cluster.restart",
                shard=shard,
                attempt=state.restarts,
                epoch=self._epoch(),
            )
            host = self._hosts[shard]
            host.restart()
            crashed = chaos.consume_crash_loop(shard)
            replayed: Optional[int] = None
            if crashed:
                host.kill()
            else:
                replayed = replay(shard)
            if crashed or replayed is None:
                if state.restarts >= self.max_restarts:
                    self._give_up(state)
                else:
                    self._restart_due[shard] = tick + self.restart_delay
                continue
            self.restarts_performed += 1
            self.replayed_instances += replayed
            state.health = ShardHealth.HEALTHY
            state.missed_heartbeats = 0
            state.down_since = None

    # -- reporting ---------------------------------------------------------

    def breaker_transitions(self) -> List[Tuple[str, float, str, str]]:
        """All shard breaker transitions as ``(dep, t, from, to)`` rows."""
        rows: List[Tuple[str, float, str, str]] = []
        for shard in sorted(self.breakers):
            breaker = self.breakers[shard]
            for when, from_state, to_state in breaker.transitions:
                rows.append(
                    (breaker.name, when, from_state.value, to_state.value)
                )
        return rows

    def health_card(self) -> Dict[int, str]:
        return {
            shard: state.health.value
            for shard, state in sorted(self.states.items())
        }
