"""The shard worker: one serving loop per shard of the problem.

A worker owns exactly one shard's problem view and decides every
customer routed to it with the literal O-AFA hot path
(:meth:`~repro.algorithms.online_afa.OnlineAdaptiveFactorAware.process_customer`).
Its compute engine is *reconstructed over shared memory*: the parent
pre-scores the shard's candidate edges once, ships the columns
(``customer_idx``/``vendor_idx``/``distance``/``vendor_starts``/
``bases``) through :func:`repro.parallel.shm.ship_columns`, and the
worker re-assembles a :class:`~repro.engine.edges.CandidateEdges` +
:meth:`~repro.engine.engine.ComputeEngine.from_prescored` engine whose
backing arrays are zero-copy views into the shared block.

Decision parity with the in-process sharded simulator is exact because

* vendors are shard-exclusive, so the worker-local
  :class:`~repro.core.assignment.Assignment` sees the same per-vendor
  spends the global assignment would show it, and
* the shipped pair bases are byte-identical to what the in-process
  shard view computes, so every threshold comparison sees the same
  floats.

The worker keeps an idempotent per-customer decision cache: a retried
exchange (after a corrupted reply) returns the cached decision instead
of re-deciding against mutated budgets, so retries never double-spend.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.cluster.protocol import (
    ChurnReply,
    ChurnRequest,
    DecideReply,
    DecideRequest,
    HeartbeatReply,
    HeartbeatRequest,
    ReplayReply,
    ReplayRequest,
    ShutdownReply,
    ShutdownRequest,
    seal,
    unseal,
)
from repro.algorithms.online_afa import OnlineAdaptiveFactorAware
from repro.core.assignment import AdInstance
from repro.engine.edges import CandidateEdges
from repro.engine.engine import ComputeEngine
from repro.obs.recorder import NullRecorder, Recorder
from repro.parallel.shm import ColumnHandle, attach_columns

#: The shm columns a shard engine is rebuilt from.
ENGINE_COLUMNS = (
    "customer_idx",
    "vendor_idx",
    "distance",
    "vendor_starts",
    "bases",
)


def engine_columns(engine: ComputeEngine) -> Dict[str, object]:
    """The shippable column set of a warmed engine (parent side)."""
    edges = engine.edges
    return {
        "customer_idx": edges.customer_idx,
        "vendor_idx": edges.vendor_idx,
        "distance": edges.distance,
        "vendor_starts": edges.vendor_starts,
        "bases": engine.pair_bases,
    }


class ShardServer:
    """The transport-agnostic core of one shard worker.

    Args:
        shard_id: This worker's shard index.
        problem: The shard's problem view (global entity ids).
        handle: Shared-memory handle for the pre-scored engine columns,
            or ``None`` to score locally (inline test mode).
        gamma_min: Calibrated threshold lower bound (shared with the
            baseline so decisions are comparable).
        g: Calibrated threshold growth constant.
        obs: Record spans into a ``shard-<i>`` lane and ship drained
            snapshots inside every reply.
        artifact_path: Optional on-disk engine artifact
            (:mod:`repro.store`) to boot the engine from instead of
            shm columns or local scoring; wins over ``handle``.
    """

    def __init__(
        self,
        shard_id: int,
        problem,
        handle: Optional[ColumnHandle],
        gamma_min: float,
        g: float,
        obs: bool = False,
        artifact_path: Optional[str] = None,
    ) -> None:
        self.shard_id = shard_id
        self._problem = problem
        self._rec = Recorder(lane=f"shard-{shard_id}") if obs else NullRecorder()
        self._attached = None
        # Artifact-backed shards boot *cold*: the mmap load is deferred
        # until the first request that actually needs the engine, so a
        # shard no customer routes to never pages its artifact in
        # (heartbeats must stay cheap on the million-user tier).
        self._artifact_path = artifact_path
        if artifact_path is None:
            with self._rec.span("cluster.shard_boot", shard=shard_id):
                self._build_engine(handle)
        self._algorithm = OnlineAdaptiveFactorAware(gamma_min=gamma_min, g=g)
        self._algorithm.reset(problem)
        self._assignment = problem.new_assignment()
        self._decided: Dict[int, Tuple[AdInstance, ...]] = {}
        self._committed = 0

    def _ensure_engine(self) -> None:
        """Demand-page the artifact engine on first real use.

        Called by the decide and churn paths (a churn splice must land
        on the loaded engine, and the artifact's epoch check would
        reject a post-churn load).  Heartbeats and replays never call
        this, so an idle shard stays at its boot footprint.
        """
        if self._artifact_path is None:
            return
        path, self._artifact_path = self._artifact_path, None
        from repro.store import load_engine

        with self._rec.span("cluster.shard_page_in", shard=self.shard_id):
            engine = load_engine(path, self._problem)
            # No warm(): warming materialises every edge's utility row,
            # touching every page of the mmap'd columns -- the opposite
            # of demand paging.  Lazy point lookups compute the same
            # floats, so decisions are unchanged; only the shard's
            # actually-scored edges ever page in.
            self._problem.adopt_engine(engine)

    def _build_engine(self, handle: Optional[ColumnHandle]) -> None:
        if handle is None:
            self._problem.warm_utilities()
            return
        self._attached = attach_columns(handle)
        edges = CandidateEdges(
            customer_idx=self._attached["customer_idx"],
            vendor_idx=self._attached["vendor_idx"],
            distance=self._attached["distance"],
            vendor_starts=self._attached["vendor_starts"],
        )
        engine = ComputeEngine.from_prescored(
            self._problem, edges, self._attached["bases"]
        )
        if engine is None:  # model without vectorization support
            self._attached.close()
            self._attached = None
            self._problem.warm_utilities()
            return
        engine.warm()
        self._problem.adopt_engine(engine)

    # -- request handling -------------------------------------------------

    def handle(self, message: object) -> object:
        """Dispatch one request message to its handler."""
        if isinstance(message, DecideRequest):
            return self.decide(message)
        if isinstance(message, HeartbeatRequest):
            return self.heartbeat(message)
        if isinstance(message, ReplayRequest):
            return self.replay(message)
        if isinstance(message, ChurnRequest):
            return self.churn(message)
        raise TypeError(f"unexpected message {type(message).__name__}")

    def decide(self, request: DecideRequest) -> DecideReply:
        """Decide one customer (idempotently) and commit locally."""
        customer = request.customer
        cid = customer.customer_id
        cached = self._decided.get(cid)
        if cached is not None:
            self._rec.count("cluster.duplicate_decides")
            return DecideReply(
                tick=request.tick,
                shard=self.shard_id,
                instances=cached,
                cached=True,
                obs=self._drain(),
            )
        self._ensure_engine()
        with self._rec.span(
            "cluster.shard_decision",
            customer=cid,
            shard=self.shard_id,
            epoch=self._problem.churn.epoch,
        ):
            picked = tuple(
                self._algorithm.process_customer(
                    self._problem, customer, self._assignment
                )
            )
        for instance in picked:
            if self._assignment.add(instance, strict=False):
                self._committed += 1
        self._decided[cid] = picked
        return DecideReply(
            tick=request.tick,
            shard=self.shard_id,
            instances=picked,
            cached=False,
            obs=self._drain(),
        )

    def heartbeat(self, request: HeartbeatRequest) -> HeartbeatReply:
        return HeartbeatReply(
            tick=request.tick,
            shard=self.shard_id,
            decided=len(self._decided),
            committed=self._committed,
            epoch=self._problem.churn.epoch,
        )

    def churn(self, request: ChurnRequest) -> ChurnReply:
        """Apply one shard delta, idempotently.

        The epoch guard is what makes re-delivery safe: the inline
        transport shares the plan's already-spliced view (its epoch is
        current before the request arrives), and a restarted worker
        boots from the post-churn view, so a replayed delta finds
        nothing to do.  A forked process worker, whose state is a
        fork-time snapshot, sees an older epoch and applies the delta
        to its local view (splicing its engine in place).
        """
        delta = request.delta
        problem = self._problem
        if delta.epoch <= problem.churn.epoch:
            return ChurnReply(
                shard=self.shard_id,
                epoch=problem.churn.epoch,
                applied=False,
            )
        self._ensure_engine()
        with self._rec.span(
            "cluster.shard_churn", shard=self.shard_id, epoch=delta.epoch
        ):
            for join in delta.join:
                problem.admit_customers(join.admit)
                problem.insert_vendor(join.vendor, position=join.position)
            for vendor_id in delta.retire:
                problem.retire_vendor(vendor_id)
            if delta.deactivate:
                problem.deactivate_vendors(delta.deactivate)
        problem.churn.epoch = delta.epoch
        return ChurnReply(
            shard=self.shard_id, epoch=delta.epoch, applied=True
        )

    def replay(self, request: ReplayRequest) -> ReplayReply:
        """Restore budgets and the decision cache after a restart."""
        replayed = 0
        for instance in request.instances:
            if self._assignment.add(instance, strict=False):
                replayed += 1
        for cid, picked in request.decided:
            self._decided[cid] = tuple(picked)
        self._rec.event(
            "cluster.replay",
            shard=self.shard_id,
            instances=len(request.instances),
            decisions=len(request.decided),
        )
        return ReplayReply(
            shard=self.shard_id,
            replayed_instances=replayed,
            replayed_decisions=len(request.decided),
        )

    def _drain(self):
        return self._rec.drain() if self._rec.enabled else None

    def close(self) -> None:
        if self._attached is not None:
            self._attached.close()
            self._attached = None


def worker_main(
    conn,
    shard_id: int,
    problem,
    handle: Optional[ColumnHandle],
    gamma_min: float,
    g: float,
    obs: bool,
    artifact_path: Optional[str] = None,
) -> None:
    """Child-process entry point: serve envelopes off a pipe until told
    to shut down (or the pipe dies with the parent)."""
    server = ShardServer(
        shard_id,
        problem,
        handle,
        gamma_min,
        g,
        obs=obs,
        artifact_path=artifact_path,
    )
    try:
        while True:
            try:
                envelope = conn.recv()
            except (EOFError, OSError):  # parent went away
                break
            message = unseal(envelope)
            if isinstance(message, ShutdownRequest):
                conn.send(seal(ShutdownReply(shard=shard_id)))
                break
            conn.send(seal(server.handle(message)))
    finally:
        server.close()
        conn.close()
