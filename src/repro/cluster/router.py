"""The cluster router: forwards arrivals to shard workers, merges state.

Every arriving customer is routed by
:meth:`~repro.sharding.plan.ShardPlan.route` to its owning shard and
decided there; the router is the sole writer of the *global*
assignment, so budgets and capacities stay authoritative in one place
while each worker mirrors only its own vendors' spend.  Replies travel
in checksummed envelopes; a corrupted reply is retried (workers decide
idempotently, so a retry returns the identical decision) and only a
persistently failing exchange escalates to the shard's circuit breaker.

When a shard cannot serve -- worker dead, breaker open, retries
exhausted, shard given up -- the decision walks the degradation ladder:

1. ``replica``: decide on the router's own copy of the shard view with
   the primary algorithm (full quality, router-side CPU);
2. ``static``: a static-threshold O-AFA over the whole problem;
3. ``nearest``: the nearest-vendor heuristic;
4. ``shed``: drop the customer (counted, never an exception).

Each tier is attempted in order and any :class:`ResilienceError` falls
through to the next, so a customer always gets *an* answer and chaos
runs finish with zero unhandled exceptions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.algorithms.nearest import NearestVendor
from repro.algorithms.online_afa import OnlineAdaptiveFactorAware
from repro.algorithms.online_static import OnlineStaticThreshold
from repro.cluster.chaos import ChaosController
from repro.cluster.control import ControlPlane
from repro.churn import ChurnEvent, ShardDelta
from repro.cluster.protocol import (
    ChurnRequest,
    CorruptMessageError,
    DecideRequest,
    ReplayRequest,
    corrupt,
    unseal,
)
from repro.core.assignment import AdInstance
from repro.core.entities import Customer
from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceededError,
    ResilienceError,
    ShardUnavailableError,
)
from repro.obs.recorder import recorder
from repro.stream.simulator import ResilienceStats

#: Default degradation ladder, best tier first.
DEFAULT_LADDER = ("replica", "static", "nearest", "shed")


@dataclass
class ClusterStats:
    """Counters and rollups of one cluster episode.

    ``decisions_by_path`` keys are ``shard`` (a worker decided),
    ``local`` (unroutable customer decided by the router), the ladder
    tiers, and ``shed``.
    """

    decisions_by_path: Dict[str, int] = field(default_factory=dict)
    retries: int = 0
    corrupt_replies: int = 0
    shard_failures: int = 0
    duplicates_served: int = 0
    rejected_instances: int = 0
    shed: int = 0
    churn_events: int = 0
    churn_epoch: int = 0
    heartbeats: int = 0
    heartbeats_missed: int = 0
    restarts: int = 0
    replayed_instances: int = 0
    faults_injected: Dict[str, int] = field(default_factory=dict)
    breaker_transitions: List[Tuple[str, float, str, str]] = field(
        default_factory=list
    )
    breaker_counts: Dict[str, Dict[str, int]] = field(default_factory=dict)
    shard_health: Dict[int, str] = field(default_factory=dict)
    router_latencies: List[float] = field(default_factory=list, repr=False)

    @property
    def decisions(self) -> int:
        return sum(self.decisions_by_path.values())

    @property
    def degraded_decisions(self) -> int:
        """Decisions that did not reach a live shard worker."""
        return sum(
            count
            for path, count in self.decisions_by_path.items()
            if path not in ("shard", "local")
        )

    @property
    def breaker_opens(self) -> int:
        return sum(
            1 for _, _, _, to_state in self.breaker_transitions
            if to_state == "open"
        )

    def as_extras(self) -> Dict[str, float]:
        """Flatten for :attr:`repro.algorithms.base.SolveResult.extras`."""
        extras = {
            "cluster_retries": float(self.retries),
            "cluster_corrupt_replies": float(self.corrupt_replies),
            "cluster_shard_failures": float(self.shard_failures),
            "cluster_restarts": float(self.restarts),
            "cluster_replayed_instances": float(self.replayed_instances),
            "cluster_heartbeats_missed": float(self.heartbeats_missed),
            "cluster_degraded_decisions": float(self.degraded_decisions),
            "cluster_shed": float(self.shed),
            "cluster_faults_injected": float(
                sum(self.faults_injected.values())
            ),
            "cluster_churn_events": float(self.churn_events),
            "cluster_churn_epoch": float(self.churn_epoch),
        }
        for path in sorted(self.decisions_by_path):
            extras[f"cluster_path.{path}"] = float(
                self.decisions_by_path[path]
            )
        for dep in sorted(self.breaker_counts):
            for state in sorted(self.breaker_counts[dep]):
                extras[f"cluster_breaker_{state}.{dep}"] = float(
                    self.breaker_counts[dep][state]
                )
        return extras


class ClusterRouter:
    """Routes one arrival stream across shard hosts.

    Args:
        problem: The global problem (budgets/capacities authority).
        plan: The shard plan used for routing and replica views.
        hosts: shard id -> host.
        control: The control plane owning health and breakers.
        chaos: Active chaos controller (fault injection points).
        gamma_min: Calibrated primary-threshold parameters (identical
            to what the workers run, for parity).
        g: Threshold growth constant.
        retry_attempts: Extra attempts after a corrupted reply.
        ladder: Degradation tiers, tried in order.
    """

    def __init__(
        self,
        problem,
        plan,
        hosts: Dict[int, object],
        control: ControlPlane,
        chaos: ChaosController,
        gamma_min: float,
        g: float,
        retry_attempts: int = 2,
        ladder: Tuple[str, ...] = DEFAULT_LADDER,
    ) -> None:
        self._problem = problem
        self._plan = plan
        self._hosts = hosts
        self._control = control
        self._chaos = chaos
        self._retry_attempts = retry_attempts
        self._ladder = ladder
        self._primary = OnlineAdaptiveFactorAware(gamma_min=gamma_min, g=g)
        self._primary.reset(problem)
        self._static = OnlineStaticThreshold(0.0)
        self._static.reset(problem)
        self._nearest = NearestVendor()
        self._nearest.reset(problem)
        self.assignment = problem.new_assignment()
        self._seen: set = set()
        # Flat replay logs, *filtered at replay time* by the current
        # plan: a vendor migrated to another shard takes its committed
        # spend history with it, so a post-migration restart replays
        # every commit onto the shard that owns the vendor *now*.
        self._committed_log: List[AdInstance] = []
        self._decided_log: List[Tuple[int, Tuple[AdInstance, ...]]] = []
        self.stats = ClusterStats()

    # -- the per-arrival path ---------------------------------------------

    def decide(self, customer: Customer, tick: int) -> List[AdInstance]:
        """Route, decide, and commit one arriving customer."""
        start = time.perf_counter()
        self._seen.add(customer.customer_id)
        rec = recorder()
        with rec.span(
            "cluster.decision",
            customer=customer.customer_id,
            tick=tick,
            epoch=self._plan.epoch,
        ):
            picked, path = self._route(customer, tick)
            committed = self._commit(picked)
        self.stats.decisions_by_path[path] = (
            self.stats.decisions_by_path.get(path, 0) + 1
        )
        rec.count(f"cluster.path.{path}")
        self.stats.router_latencies.append(time.perf_counter() - start)
        if path == "shard":
            self._decided_log.append(
                (customer.customer_id, tuple(picked))
            )
        return committed

    def _route(
        self, customer: Customer, tick: int
    ) -> Tuple[List[AdInstance], str]:
        rec = recorder()
        shard = self._plan.route(customer)
        if shard is None:
            picked = self._primary.process_customer(
                self._problem, customer, self.assignment
            )
            return list(picked), "local"
        if not self._control.serving(shard):
            return self._degrade(customer, shard, tick, "shard_failed")
        breaker = self._control.breakers[shard]
        try:
            breaker.admit()
        except CircuitOpenError:
            rec.count("cluster.breaker_rejections")
            return self._degrade(customer, shard, tick, "breaker_open")
        attempts = 0
        while True:
            attempts += 1
            try:
                envelope = self._hosts[shard].request(
                    DecideRequest(tick=tick, customer=customer)
                )
                if self._chaos.should_corrupt(shard):
                    envelope = corrupt(
                        envelope, self._chaos.corrupt_position()
                    )
                    self.stats.corrupt_replies += 1
                reply = unseal(envelope)
                break
            except CorruptMessageError:
                self.stats.retries += 1
                rec.count("cluster.retries")
                if attempts <= self._retry_attempts:
                    continue
                self._control.note_failure(shard, tick)
                self.stats.shard_failures += 1
                return self._degrade(
                    customer, shard, tick, "retries_exhausted"
                )
            except (ShardUnavailableError, DeadlineExceededError):
                self._control.note_failure(shard, tick)
                self.stats.shard_failures += 1
                rec.event(
                    "cluster.shard_loss",
                    shard=shard,
                    tick=tick,
                    customer=customer.customer_id,
                )
                return self._degrade(customer, shard, tick, "shard_down")
        self._control.note_success(shard)
        if reply.cached:
            self.stats.duplicates_served += 1
        if reply.obs is not None and rec.enabled:
            rec.merge(reply.obs)
        return list(reply.instances), "shard"

    def _degrade(
        self,
        customer: Customer,
        shard: Optional[int],
        tick: int,
        reason: str,
    ) -> Tuple[List[AdInstance], str]:
        rec = recorder()
        rec.event(
            "cluster.fallback",
            shard=-1 if shard is None else shard,
            customer=customer.customer_id,
            reason=reason,
        )
        for tier in self._ladder:
            try:
                if tier == "replica":
                    if shard is None:
                        continue
                    view = self._plan.problem_for(shard)
                    with rec.span(
                        "cluster.replica_decision",
                        shard=shard,
                        customer=customer.customer_id,
                    ):
                        picked = self._primary.process_customer(
                            view, customer, self.assignment
                        )
                    return list(picked), "replica"
                if tier == "static":
                    picked = self._static.process_customer(
                        self._problem, customer, self.assignment
                    )
                    return list(picked), "static"
                if tier == "nearest":
                    picked = self._nearest.process_customer(
                        self._problem, customer, self.assignment
                    )
                    return list(picked), "nearest"
            except ResilienceError:
                continue
            if tier == "shed":
                break
        self.stats.shed += 1
        rec.count("cluster.shed")
        return [], "shed"

    def _commit(self, picked: List[AdInstance]) -> List[AdInstance]:
        rec = recorder()
        committed: List[AdInstance] = []
        for instance in picked:
            if instance.customer_id not in self._seen:
                self.stats.rejected_instances += 1
                continue
            if self.assignment.add(instance, strict=False):
                committed.append(instance)
                rec.count("cluster.commits")
                self._committed_log.append(instance)
            else:
                self.stats.rejected_instances += 1
                rec.count("cluster.rejected_instances")
        return committed

    # -- live churn --------------------------------------------------------

    def apply_churn(self, event: ChurnEvent, tick: int) -> List[ShardDelta]:
        """Apply one churn event and ship its deltas to the workers.

        The plan updates the global problem, its own membership maps,
        and the router-side replica views incrementally; the returned
        per-shard deltas are then forwarded so out-of-process workers
        splice their fork-local state to the same epoch.  A dead shard
        simply misses the shipment -- its restart boots from the plan's
        already-churned view and the replayed delta no-ops.
        """
        deltas = self._plan.apply_churn(event)
        self.stats.churn_events += 1
        recorder().event(
            "cluster.churn",
            kind=event.kind,
            tick=tick,
            epoch=self._plan.epoch,
        )
        for delta in deltas:
            self._ship_delta(delta, tick)
        return deltas

    def _ship_delta(self, delta: ShardDelta, tick: int) -> None:
        shard = delta.shard
        host = self._hosts.get(shard)
        if host is None:
            return
        if delta.retire or delta.join:
            # Boot-time shm columns no longer describe this shard; any
            # future restart must score locally against the live view.
            host.invalidate_handle()
        if not self._control.serving(shard) or not host.alive:
            return
        try:
            unseal(host.request(ChurnRequest(tick=tick, delta=delta)))
        except ResilienceError:
            self._control.note_failure(shard, tick)
            self.stats.shard_failures += 1
            return
        if delta.join:
            # A joining vendor brings its committed spend history along
            # so the new owner's local budget mirror starts correct.
            seed = self.committed_for_vendors(
                join.vendor.vendor_id for join in delta.join
            )
            if seed:
                try:
                    unseal(host.request(ReplayRequest(instances=seed)))
                except ResilienceError:
                    self._control.note_failure(shard, tick)
                    self.stats.shard_failures += 1

    def committed_for_vendors(self, vendor_ids) -> Tuple[AdInstance, ...]:
        """Every globally-committed instance of the given vendors."""
        wanted = set(vendor_ids)
        return tuple(
            instance
            for instance in self._committed_log
            if instance.vendor_id in wanted
        )

    # -- recovery support --------------------------------------------------

    def replay(self, shard: int) -> Optional[int]:
        """Re-seed a restarted worker from the authoritative state.

        The flat commit/decision logs are filtered by the *current*
        plan, so commits on a vendor that has since migrated replay to
        its post-migration shard.

        Returns the replayed instance count, or ``None`` when the
        replay exchange itself failed (the control plane treats that
        restart as dead).
        """
        plan = self._plan
        customers = self._problem.customers_by_id
        instances = tuple(
            instance
            for instance in self._committed_log
            if plan.shard_of_vendor.get(instance.vendor_id) == shard
        )
        decided = tuple(
            (cid, picked)
            for cid, picked in self._decided_log
            if cid in customers and plan.route(customers[cid]) == shard
        )
        request = ReplayRequest(instances=instances, decided=decided)
        try:
            reply = unseal(self._hosts[shard].request(request))
        except ResilienceError:
            return None
        recorder().event(
            "cluster.replayed",
            shard=shard,
            instances=reply.replayed_instances,
            decisions=reply.replayed_decisions,
            epoch=plan.epoch,
        )
        return reply.replayed_instances

    def finalize(self) -> ClusterStats:
        """Fold control-plane and chaos rollups into the stats."""
        stats = self.stats
        stats.breaker_transitions = self._control.breaker_transitions()
        stats.breaker_counts = ResilienceStats.count_transitions(
            stats.breaker_transitions
        )
        stats.shard_health = self._control.health_card()
        stats.heartbeats = self._control.heartbeats
        stats.heartbeats_missed = self._control.heartbeats_missed
        stats.restarts = self._control.restarts_performed
        stats.replayed_instances = self._control.replayed_instances
        stats.faults_injected = dict(self._chaos.injected)
        stats.churn_epoch = self._plan.epoch
        return stats
